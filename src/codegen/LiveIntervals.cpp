//===- codegen/LiveIntervals.cpp - Live intervals over machine IR ------------===//

#include "codegen/LiveIntervals.h"

#include <algorithm>

using namespace sxe;

uint32_t sxe::numberMachineInsts(MFunction &MF) {
  uint32_t Pos = 0;
  for (auto &B : MF.Blocks)
    for (MInst &I : B->Insts) {
      I.Pos = Pos;
      Pos += 2;
    }
  return Pos;
}

BlockLiveness sxe::computeBlockLiveness(const MFunction &MF) {
  size_t NumBlocks = MF.Blocks.size();
  uint32_t NumVRegs = MF.NextVirtReg - FirstVirtReg;
  BlockLiveness L;
  L.LiveIn.assign(NumBlocks, std::vector<bool>(NumVRegs, false));
  L.LiveOut.assign(NumBlocks, std::vector<bool>(NumVRegs, false));

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t BI = NumBlocks; BI-- > 0;) {
      const MBlock &B = *MF.Blocks[BI];
      std::vector<bool> Out(NumVRegs, false);
      if (!B.Insts.empty()) {
        const MInst &Term = B.Insts.back();
        for (unsigned SI = 0; SI < Term.numSuccessors(); ++SI) {
          const std::vector<bool> &SuccIn = L.LiveIn[Term.Succs[SI]->id()];
          for (uint32_t R = 0; R < NumVRegs; ++R)
            if (SuccIn[R])
              Out[R] = true;
        }
      }
      std::vector<bool> Live = Out;
      for (size_t II = B.Insts.size(); II-- > 0;) {
        const MInst &I = B.Insts[II];
        if (I.Def != MNoReg && isVirtReg(I.Def))
          Live[I.Def - FirstVirtReg] = false;
        for (uint32_t U : I.Uses)
          if (isVirtReg(U))
            Live[U - FirstVirtReg] = true;
      }
      if (Out != L.LiveOut[BI]) {
        L.LiveOut[BI] = std::move(Out);
        Changed = true;
      }
      if (Live != L.LiveIn[BI]) {
        L.LiveIn[BI] = std::move(Live);
        Changed = true;
      }
    }
  }
  return L;
}

std::vector<LiveInterval> sxe::computeLiveIntervals(MFunction &MF) {
  numberMachineInsts(MF);
  BlockLiveness L = computeBlockLiveness(MF);

  uint32_t NumVRegs = MF.NextVirtReg - FirstVirtReg;
  std::vector<LiveInterval> ByVReg(NumVRegs);
  std::vector<bool> Seen(NumVRegs, false);

  auto Extend = [&](uint32_t VReg, uint32_t Pos) {
    uint32_t R = VReg - FirstVirtReg;
    LiveInterval &LI = ByVReg[R];
    if (!Seen[R]) {
      Seen[R] = true;
      LI.VReg = VReg;
      LI.Start = LI.End = Pos;
      return;
    }
    LI.Start = std::min(LI.Start, Pos);
    LI.End = std::max(LI.End, Pos);
  };

  for (const auto &B : MF.Blocks) {
    if (B->Insts.empty())
      continue;
    uint32_t BlockStart = B->Insts.front().Pos;
    uint32_t BlockEnd = B->Insts.back().Pos;
    const std::vector<bool> &In = L.LiveIn[B->id()];
    const std::vector<bool> &Out = L.LiveOut[B->id()];
    for (uint32_t R = 0; R < NumVRegs; ++R) {
      if (In[R])
        Extend(FirstVirtReg + R, BlockStart);
      if (Out[R]) {
        Extend(FirstVirtReg + R, BlockStart);
        Extend(FirstVirtReg + R, BlockEnd);
      }
    }
    for (const MInst &I : B->Insts) {
      if (I.Def != MNoReg && isVirtReg(I.Def))
        Extend(I.Def, I.Pos);
      for (uint32_t U : I.Uses)
        if (isVirtReg(U))
          Extend(U, I.Pos);
    }
  }

  std::vector<LiveInterval> Intervals;
  for (uint32_t R = 0; R < NumVRegs; ++R)
    if (Seen[R])
      Intervals.push_back(ByVReg[R]);

  // Mark intervals that must survive a call.
  std::vector<uint32_t> CallPositions;
  for (const auto &B : MF.Blocks)
    for (const MInst &I : B->Insts)
      if (I.isCall())
        CallPositions.push_back(I.Pos);
  std::sort(CallPositions.begin(), CallPositions.end());
  for (LiveInterval &LI : Intervals) {
    auto It = std::upper_bound(CallPositions.begin(), CallPositions.end(),
                               LI.Start);
    if (It != CallPositions.end() && *It < LI.End)
      LI.CrossesCall = true;
  }

  std::sort(Intervals.begin(), Intervals.end(),
            [](const LiveInterval &A, const LiveInterval &B) {
              if (A.Start != B.Start)
                return A.Start < B.Start;
              return A.VReg < B.VReg;
            });
  return Intervals;
}
