//===- codegen/CodeBuffer.h - W^X executable code buffer ---------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An mmap'd buffer for emitted machine code with a strict W^X lifecycle:
/// the pages are writable (and never executable) while the emitter fills
/// them, then flipped to read+execute — after which they can never be made
/// writable again through this object. One buffer holds one compiled
/// module; it is unmapped when the NativeModule that owns it dies.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_CODEGEN_CODEBUFFER_H
#define SXE_CODEGEN_CODEBUFFER_H

#include <cstddef>
#include <cstdint>

namespace sxe {

/// One executable code allocation.
class CodeBuffer {
public:
  CodeBuffer() = default;
  ~CodeBuffer();

  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;

  /// True when this platform can mmap anonymous read/write/execute-capable
  /// pages at all (POSIX hosts).
  static bool hostSupported();

  /// Maps \p Bytes of writable, non-executable memory (rounded up to whole
  /// pages). Returns false on failure or if already allocated.
  bool allocate(size_t Bytes);

  /// Flips the mapping to read+execute. The buffer must be allocated and
  /// not yet executable. Returns false when mprotect refuses (e.g. a
  /// noexec/SELinux-restricted environment — callers fall back to the
  /// cycle model).
  bool makeExecutable();

  uint8_t *data() { return Data; }
  const uint8_t *data() const { return Data; }
  size_t size() const { return Size; }
  bool executable() const { return Executable; }

private:
  uint8_t *Data = nullptr;
  size_t Size = 0;
  bool Executable = false;
};

} // namespace sxe

#endif // SXE_CODEGEN_CODEBUFFER_H
