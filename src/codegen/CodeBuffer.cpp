//===- codegen/CodeBuffer.cpp - W^X executable code buffer -------------------===//

#include "codegen/CodeBuffer.h"

#if defined(__unix__) || defined(__APPLE__)
#define SXE_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define SXE_HAVE_MMAP 0
#endif

using namespace sxe;

bool CodeBuffer::hostSupported() { return SXE_HAVE_MMAP != 0; }

#if SXE_HAVE_MMAP

namespace {
size_t roundToPages(size_t Bytes) {
  size_t Page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  if (Page == 0)
    Page = 4096;
  return (Bytes + Page - 1) / Page * Page;
}
} // namespace

bool CodeBuffer::allocate(size_t Bytes) {
  if (Data || Bytes == 0)
    return false;
  size_t Mapped = roundToPages(Bytes);
  void *P = mmap(nullptr, Mapped, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Data = static_cast<uint8_t *>(P);
  Size = Mapped;
  return true;
}

bool CodeBuffer::makeExecutable() {
  if (!Data || Executable)
    return false;
  if (mprotect(Data, Size, PROT_READ | PROT_EXEC) != 0)
    return false;
  Executable = true;
  return true;
}

CodeBuffer::~CodeBuffer() {
  if (Data)
    munmap(Data, Size);
}

#else

bool CodeBuffer::allocate(size_t) { return false; }
bool CodeBuffer::makeExecutable() { return false; }
CodeBuffer::~CodeBuffer() = default;

#endif
