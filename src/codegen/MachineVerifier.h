//===- codegen/MachineVerifier.h - Post-RA machine IR checks -----*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks on allocated machine IR, run before emission (and
/// directly by tests/codegen_test.cpp):
///
///  - every block is non-empty and ends in exactly one terminator;
///  - no operand is an unallocated virtual register;
///  - slot references appear only on call pseudos (the emitter stages them
///    from the frame) and lie inside the function's spill area;
///  - reserved registers (RAX/RCX/RDX/RSP/RBP/R15) never appear as
///    allocated operands outside the rewriter's own spill fixups;
///  - no two live intervals assigned to the same physical register overlap.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_CODEGEN_MACHINEVERIFIER_H
#define SXE_CODEGEN_MACHINEVERIFIER_H

#include "codegen/LiveIntervals.h"
#include "codegen/MachineIR.h"

#include <string>
#include <vector>

namespace sxe {

/// Verifies allocated \p MF; \p Intervals, when provided, additionally gets
/// the overlap check. Returns an empty string on success, otherwise a
/// description of the first problem found.
std::string verifyMachineFunction(const MFunction &MF,
                                  const std::vector<LiveInterval> *Intervals =
                                      nullptr);

} // namespace sxe

#endif // SXE_CODEGEN_MACHINEVERIFIER_H
