//===- codegen/Emitter.h - Machine IR to x86-64 bytes ------------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns allocated machine IR into executable x86-64 bytes.
///
/// Every compiled function uses one internal ABI:
///
///   uint64_t fn(NativeCtx *ctx /* RDI */, const uint64_t *args /* RSI */)
///
/// which is SysV-compatible, so the host C++ code calls entry points
/// directly. The prologue pins the context in R15, saves the callee-saved
/// set, checks the call-depth budget; every block head pays its fuel cost
/// (the interpreter-equivalent step budget); runtime traps route through
/// per-function out-of-line stubs into rt_trap, which longjmps back to
/// NativeModule::run. Internal calls go through the per-run function table
/// in the context (no relocations — the code is position-independent),
/// helper calls through absolute addresses bound at emission.
///
/// Frame layout (rbp-relative):
///
///   [rbp-8..-40]   saved rbx, r12, r13, r14, r15
///   [rbp-48]       incoming args pointer
///   [rbp-56-8i]    spill slot i
///   [rsp+8j]       outgoing argument j (also the staging area helpers'
///                  arguments pass through)
///
//===----------------------------------------------------------------------===//

#ifndef SXE_CODEGEN_EMITTER_H
#define SXE_CODEGEN_EMITTER_H

#include "codegen/MachineIR.h"

#include <cstdint>
#include <vector>

namespace sxe {

/// Absolute addresses of the runtime helpers, bound by NativeEngine.
struct HelperTable {
  uint64_t NewArray = 0;
  uint64_t ArrayLen = 0;
  uint64_t ArrayLoad = 0;
  uint64_t ArrayStore = 0;
  uint64_t Div32 = 0;
  uint64_t Rem32 = 0;
  uint64_t Div64 = 0;
  uint64_t Rem64 = 0;
  uint64_t D2I = 0;
  uint64_t FCmp = 0;
  uint64_t Trap = 0;

  uint64_t address(MHelper H) const;
};

/// Byte offsets the emitted code assumes inside NativeCtx; NativeEngine
/// static_asserts they match the real struct.
struct NativeCtxLayout {
  static constexpr int32_t FuelOffset = 0;
  static constexpr int32_t DepthOffset = 8;
  static constexpr int32_t MaxDepthOffset = 12;
  static constexpr int32_t FnTableOffset = 16;
};

/// One emitted module: flat code plus each function's entry offset.
struct EmittedModule {
  std::vector<uint8_t> Code;
  std::vector<size_t> FunctionOffsets; ///< Indexed by MFunction::index().
};

/// Emits every (allocated, verified) function of \p MM.
EmittedModule emitModule(const MModule &MM, const HelperTable &Helpers);

} // namespace sxe

#endif // SXE_CODEGEN_EMITTER_H
