//===- codegen/RegAlloc.h - Linear-scan register allocation ------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-scan register allocation over the live intervals of
/// codegen/LiveIntervals.h, following dreavm's register_allocation_pass:
/// intervals are visited in ascending start order, expired actives free
/// their registers, and when no register is available the interval with the
/// furthest end point is spilled to a frame slot.
///
/// Register conventions (see docs/CODEGEN.md):
///
///   RAX, RDX     reserved spill-rewrite scratches
///   RCX          reserved emitter scratch (shift counts, setcc, FP masks)
///   RSP, RBP     frame
///   R15          native context pointer
///   RBX R12-R14  allocatable, callee-saved (survive calls)
///   RSI RDI      allocatable, caller-saved
///   R8-R11       allocatable, caller-saved
///
/// Intervals that cross a call may only take callee-saved registers — the
/// emitted code never saves registers around calls, so everything else must
/// either end before the call or live in a spill slot.
///
/// After assignment the rewriter replaces every vreg: ordinary instructions
/// get SpillLoad/SpillStore fixups through the scratch registers; call
/// pseudos keep spilled operands as slot references, which the emitter
/// stages straight from the frame.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_CODEGEN_REGALLOC_H
#define SXE_CODEGEN_REGALLOC_H

#include "codegen/LiveIntervals.h"
#include "codegen/MachineIR.h"

#include <cstdint>
#include <vector>

namespace sxe {

/// Allocation knobs. The pool caps exist so tests can force spills with a
/// handful of live values (k+1 values on k registers) instead of needing
/// eleven simultaneously live ranges.
struct RegAllocOptions {
  /// How many of {RBX, R12, R13, R14} to use (0..4).
  uint32_t MaxCalleeSaved = 4;
  /// How many of {RSI, RDI, R8, R9, R10, R11} to use (0..6).
  uint32_t MaxCallerSaved = 6;
};

/// Outcome of one allocateRegisters() run.
struct RegAllocResult {
  uint32_t NumSpillSlots = 0;
  uint32_t NumSpilledIntervals = 0;
  uint32_t NumSpillLoads = 0;  ///< SpillLoad fixups inserted.
  uint32_t NumSpillStores = 0; ///< SpillStore fixups inserted.
  /// Final intervals with PhysReg/Slot assignments, for the verifier and
  /// the tests (sorted by ascending start).
  std::vector<LiveInterval> Intervals;
};

/// Runs linear scan on \p MF and rewrites its instructions in place to use
/// physical registers, spill code, and slot references. Sets
/// MF.NumSpillSlots.
RegAllocResult allocateRegisters(MFunction &MF,
                                 const RegAllocOptions &Opts = {});

} // namespace sxe

#endif // SXE_CODEGEN_REGALLOC_H
