//===- codegen/Lowering.h - IR to machine IR lowering ------------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers optimized sxe IR to the two-address machine IR of
/// codegen/MachineIR.h. The mapping is deliberately transparent:
///
///  - IR virtual register R becomes machine vreg FirstVirtReg + R, so a
///    machine-IR dump lines up with the IR dump it came from;
///  - every explicit conversion the middle end left behind becomes a real
///    movsx/movzx/movl instruction (this is what makes eliminated
///    conversions *measurably* cheaper);
///  - W32 arithmetic selects the 32-bit instruction forms, whose implicit
///    zero extension reproduces the interpreter's x86-64 Machine-mode
///    masking rule exactly;
///  - division, floating-point compares, D2I, traps, and all array
///    operations lower to runtime-helper call pseudos whose C
///    implementations (codegen/NativeEngine.cpp) mirror interpreter
///    semantics including trap behaviour;
///  - any vreg live into the entry block that is not a parameter gets an
///    explicit zero initialization, matching the interpreter's JVM-like
///    zeroed locals.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_CODEGEN_LOWERING_H
#define SXE_CODEGEN_LOWERING_H

#include "codegen/MachineIR.h"

#include <cstdint>
#include <memory>

namespace sxe {

/// Counters from one lowerModule() run (surfaced through PassStats and the
/// codegen metrics).
struct LoweringStats {
  uint64_t Functions = 0;
  uint64_t Blocks = 0;
  uint64_t MachineInsts = 0;
  uint64_t HelperCalls = 0;  ///< Div/array/FP-compare/trap call pseudos.
  uint64_t Conversions = 0;  ///< movsx/movzx/movl emitted.
  uint64_t ZeroInits = 0;    ///< Entry-block zeroing of live-in locals.
};

/// Lowers every function of \p M. The module must verify; the lowering
/// asserts structural invariants it relies on (terminated blocks, operand
/// counts).
std::unique_ptr<MModule> lowerModule(const Module &M,
                                     LoweringStats *Stats = nullptr);

} // namespace sxe

#endif // SXE_CODEGEN_LOWERING_H
