//===- codegen/CycleModel.cpp - Machine-IR cycle estimate --------------------===//

#include "codegen/CycleModel.h"

#include "analysis/BlockFrequency.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "support/Error.h"

using namespace sxe;

uint64_t sxe::machineInstCycleCost(const MInst &I, const TargetInfo &Target) {
  const CycleCosts &C = Target.costs();
  switch (I.Op) {
  case MOp::MovImm:
  case MOp::MovRR:
  case MOp::Mov32:
  case MOp::Add:
  case MOp::Sub:
  case MOp::And:
  case MOp::Or:
  case MOp::Xor:
  case MOp::Shl:
  case MOp::Shr:
  case MOp::Sar:
  case MOp::Neg:
  case MOp::Not:
  case MOp::Movsx8:
  case MOp::Movsx16:
  case MOp::Movsx32:
  case MOp::Movzx8:
  case MOp::Movzx16:
  case MOp::CmpSet:
    return C.Alu;
  case MOp::IMul:
    return C.Mul;
  case MOp::FAdd:
  case MOp::FSub:
  case MOp::FMul:
  case MOp::FNeg:
    return C.FpAlu;
  case MOp::FDiv:
    return C.FpDiv;
  case MOp::CvtSi2Sd:
    return C.Conv;
  case MOp::LoadParam:
  case MOp::SpillLoad:
    return C.Load;
  case MOp::SpillStore:
    return C.Store;
  case MOp::CallFn:
    return C.Call;
  case MOp::CallHelper:
    // Charge the helper's dominant operation plus the call overhead the
    // out-of-line sequence pays.
    switch (I.Helper) {
    case MHelper::NewArray:
      return C.Call + C.Alloc;
    case MHelper::ArrayLen:
    case MHelper::ArrayLoad:
      return C.Call + C.Load;
    case MHelper::ArrayStore:
      return C.Call + C.Store;
    case MHelper::Div32:
    case MHelper::Rem32:
    case MHelper::Div64:
    case MHelper::Rem64:
      return C.Call + C.Div;
    case MHelper::D2I:
      return C.Call + C.Conv;
    case MHelper::FCmp:
      return C.Call + C.FpAlu;
    case MHelper::Trap:
      return C.Branch;
    case MHelper::None:
      break;
    }
    sxeUnreachable("helper call without a helper");
  case MOp::TestJnz:
  case MOp::JmpB:
  case MOp::RetR:
    return C.Branch;
  }
  sxeUnreachable("invalid machine opcode");
}

CycleEstimate sxe::estimateFunctionCycles(const MFunction &MF,
                                          const TargetInfo &Target) {
  // BlockFrequency runs on the source IR function; the analyses mutate
  // nothing but demand mutable access for instruction numbering.
  Function &F = const_cast<Function &>(*MF.source());
  CFG Cfg(F);
  Dominators Doms(Cfg);
  LoopInfo Loops(Cfg, Doms);
  BlockFrequency Freq(Cfg, Loops);

  CycleEstimate E;
  for (const auto &B : MF.Blocks) {
    double W = B->Source ? Freq.frequency(B->Source) : 1.0;
    for (const MInst &I : B->Insts) {
      uint64_t Cost = machineInstCycleCost(I, Target);
      E.Cycles += W * Cost;
      ++E.Insts;
      if (I.Op == MOp::SpillLoad || I.Op == MOp::SpillStore)
        E.SpillCycles += W * Cost;
      if (I.Op == MOp::Movsx8 || I.Op == MOp::Movsx16 ||
          I.Op == MOp::Movsx32 || I.Op == MOp::Movzx8 ||
          I.Op == MOp::Movzx16 || I.Op == MOp::Mov32)
        E.ConvCycles += W * Cost;
    }
  }
  return E;
}

CycleEstimate sxe::estimateModuleCycles(const MModule &MM,
                                        const TargetInfo &Target) {
  CycleEstimate Total;
  for (const auto &MF : MM.Functions) {
    CycleEstimate E = estimateFunctionCycles(*MF, Target);
    Total.Cycles += E.Cycles;
    Total.SpillCycles += E.SpillCycles;
    Total.ConvCycles += E.ConvCycles;
    Total.Insts += E.Insts;
  }
  return Total;
}
