//===- codegen/MachineIR.cpp - x86-64-shaped machine IR ----------------------===//

#include "codegen/MachineIR.h"

#include "support/Error.h"

#include <sstream>

using namespace sxe;

const char *sxe::physRegName(uint32_t R) {
  static const char *const Names[NumPhysRegs] = {
      "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
  return R < NumPhysRegs ? Names[R] : "r?";
}

const char *sxe::helperName(MHelper H) {
  switch (H) {
  case MHelper::None:
    return "none";
  case MHelper::NewArray:
    return "new_array";
  case MHelper::ArrayLen:
    return "array_len";
  case MHelper::ArrayLoad:
    return "array_load";
  case MHelper::ArrayStore:
    return "array_store";
  case MHelper::Div32:
    return "div32";
  case MHelper::Rem32:
    return "rem32";
  case MHelper::Div64:
    return "div64";
  case MHelper::Rem64:
    return "rem64";
  case MHelper::D2I:
    return "d2i";
  case MHelper::FCmp:
    return "fcmp";
  case MHelper::Trap:
    return "trap";
  }
  sxeUnreachable("invalid MHelper enumerator");
}

const char *sxe::mopName(MOp Op) {
  switch (Op) {
  case MOp::MovImm:
    return "movimm";
  case MOp::MovRR:
    return "mov";
  case MOp::Mov32:
    return "movl";
  case MOp::Add:
    return "add";
  case MOp::Sub:
    return "sub";
  case MOp::IMul:
    return "imul";
  case MOp::And:
    return "and";
  case MOp::Or:
    return "or";
  case MOp::Xor:
    return "xor";
  case MOp::Shl:
    return "shl";
  case MOp::Shr:
    return "shr";
  case MOp::Sar:
    return "sar";
  case MOp::Neg:
    return "neg";
  case MOp::Not:
    return "not";
  case MOp::Movsx8:
    return "movsx8";
  case MOp::Movsx16:
    return "movsx16";
  case MOp::Movsx32:
    return "movsxd";
  case MOp::Movzx8:
    return "movzx8";
  case MOp::Movzx16:
    return "movzx16";
  case MOp::CmpSet:
    return "cmpset";
  case MOp::FAdd:
    return "fadd";
  case MOp::FSub:
    return "fsub";
  case MOp::FMul:
    return "fmul";
  case MOp::FDiv:
    return "fdiv";
  case MOp::FNeg:
    return "fneg";
  case MOp::CvtSi2Sd:
    return "cvtsi2sd";
  case MOp::LoadParam:
    return "loadparam";
  case MOp::CallFn:
    return "call";
  case MOp::CallHelper:
    return "callrt";
  case MOp::TestJnz:
    return "testjnz";
  case MOp::JmpB:
    return "jmp";
  case MOp::RetR:
    return "ret";
  case MOp::SpillStore:
    return "spillst";
  case MOp::SpillLoad:
    return "spillld";
  }
  sxeUnreachable("invalid MOp enumerator");
}

namespace {

std::string regText(uint32_t R) {
  if (R == MNoReg)
    return "<none>";
  if (isPhysReg(R))
    return physRegName(R);
  if (isSlotRef(R))
    return "[slot" + std::to_string(slotOfRef(R)) + "]";
  return "v" + std::to_string(R - FirstVirtReg);
}

void printInst(std::ostream &OS, const MInst &I) {
  OS << "    ";
  OS << mopName(I.Op);
  if (I.Op == MOp::CmpSet || (I.Op >= MOp::Add && I.Op <= MOp::Not))
    OS << (I.W == Width::W32 ? ".w32" : ".w64");
  if (I.Op == MOp::CmpSet)
    OS << "." << cmpPredName(I.Pred);
  if (I.Op == MOp::CallHelper)
    OS << " " << helperName(I.Helper);
  if (I.Def != MNoReg)
    OS << " " << regText(I.Def) << " =";
  for (uint32_t U : I.Uses)
    OS << " " << regText(U);
  if (I.Op == MOp::MovImm || I.Op == MOp::LoadParam ||
      I.Op == MOp::SpillStore || I.Op == MOp::SpillLoad ||
      (I.Op == MOp::CallHelper && I.Helper != MHelper::FCmp))
    OS << " #" << I.Imm;
  if (I.Op == MOp::CallFn)
    OS << " @fn" << I.Callee;
  if (I.Op == MOp::TestJnz)
    OS << " -> " << I.Succs[0]->name() << ", " << I.Succs[1]->name();
  if (I.Op == MOp::JmpB)
    OS << " -> " << I.Succs[0]->name();
  OS << "\n";
}

} // namespace

std::string sxe::printMachineFunction(const MFunction &MF) {
  std::ostringstream OS;
  OS << "mfunc " << MF.name() << " (params " << MF.NumParams << ", slots "
     << MF.NumSpillSlots << ")\n";
  for (const auto &B : MF.Blocks) {
    OS << "  " << B->name() << ": ; fuel " << B->FuelCost << "\n";
    for (const MInst &I : B->Insts)
      printInst(OS, I);
  }
  return OS.str();
}

std::string sxe::printMachineModule(const MModule &MM) {
  std::string Text;
  for (const auto &F : MM.Functions)
    Text += printMachineFunction(*F);
  return Text;
}
