//===- codegen/MachineIR.h - x86-64-shaped machine IR ------------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine IR the baseline native backend lowers optimized sxe IR
/// into: two-address x86-64-shaped operations over an unbounded pool of
/// 64-bit virtual registers, with *explicit* conversion instructions
/// (movsx/movzx/movl) so every sign/zero extension the middle end failed
/// to eliminate costs a real machine instruction — which is what finally
/// makes the Figure 13/14 speedups hardware-real.
///
/// Register operands live in one flat numbering:
///
///   [0, NumPhysRegs)          physical GPRs (x86-64 encoding order)
///   [FirstVirtReg, SlotBase)  virtual registers (IR regs + lowering temps)
///   [SlotBase, ...)           spill-slot references, written by the
///                             register allocator (call pseudos read their
///                             operands straight from the frame)
///
/// Before register allocation every register operand is virtual; after
/// allocation and spill rewriting the machine verifier checks that only
/// physical registers (plus slot references on call pseudos) remain.
///
/// The shape follows dreavm's register_allocation_pass.c: linear scan over
/// live intervals with spill handling runs on this IR, then the emitter
/// turns it into executable bytes (codegen/Emitter.h) or a weighted cycle
/// estimate (codegen/CycleModel.h) on hosts that cannot execute x86-64.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_CODEGEN_MACHINEIR_H
#define SXE_CODEGEN_MACHINEIR_H

#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Opcode.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sxe {

/// Physical x86-64 general-purpose registers, in hardware encoding order
/// (the value is the ModRM/REX register number).
enum X86Reg : uint32_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Number of physical GPRs.
constexpr uint32_t NumPhysRegs = 16;

/// First virtual register number.
constexpr uint32_t FirstVirtReg = 16;

/// Register numbers at or above this encode a spill-slot reference:
/// `SlotBase + N` is frame slot N. Only the register allocator writes
/// these, and only call-family pseudos may carry them into emission.
constexpr uint32_t SlotBase = 1u << 30;

/// "No register" sentinel for machine operands.
constexpr uint32_t MNoReg = ~static_cast<uint32_t>(0);

inline bool isPhysReg(uint32_t R) { return R < NumPhysRegs; }
inline bool isVirtReg(uint32_t R) {
  return R >= FirstVirtReg && R < SlotBase;
}
inline bool isSlotRef(uint32_t R) { return R >= SlotBase && R != MNoReg; }
inline uint32_t slotOfRef(uint32_t R) { return R - SlotBase; }
inline uint32_t slotRef(uint32_t Slot) { return SlotBase + Slot; }

/// Printable name of physical register \p R ("rax", ...).
const char *physRegName(uint32_t R);

/// Runtime helpers compiled code calls into (codegen/NativeEngine.cpp
/// binds them to addresses; codegen/CycleModel.cpp charges them cycles).
enum class MHelper : uint8_t {
  None,
  NewArray,   ///< dest = rt_new_array(ctx, len, elemty)
  ArrayLen,   ///< dest = rt_array_len(ctx, handle)
  ArrayLoad,  ///< dest = rt_array_load(ctx, handle, index, elemty)
  ArrayStore, ///< rt_array_store(ctx, handle, index, value, elemty)
  Div32,      ///< dest = rt_div32(ctx, a, b); Java semantics, may trap
  Rem32,
  Div64,
  Rem64,
  D2I,  ///< dest = rt_d2i(ctx, bits); saturating, zero-extended result
  FCmp, ///< dest = rt_fcmp(ctx, abits, bbits, pred)
  Trap, ///< rt_trap(ctx, kind); never returns
};

/// Printable name of \p H ("new_array", ...).
const char *helperName(MHelper H);

/// Machine opcodes. Binary arithmetic is two-address (`dst op= src`), so
/// the destination is both a use and a def; the lowering materializes the
/// extra moves x86 needs.
enum class MOp : uint8_t {
  MovImm, ///< dst = Imm (64-bit immediate)
  MovRR,  ///< dst = src (full 64-bit move)
  Mov32,  ///< dst = zext32(src) (movl: write to a 32-bit register)

  // Two-address integer ALU; Width selects the 32- or 64-bit form (the
  // 32-bit form implicitly zero-extends, exactly the x86_64 TargetInfo
  // model the interpreter's Machine mode reproduces).
  Add, ///< dst += src
  Sub, ///< dst -= src
  IMul,
  And,
  Or,
  Xor,
  Shl, ///< dst <<= src (emitter routes the count through CL)
  Shr,
  Sar,
  Neg, ///< dst = -dst
  Not, ///< dst = ~dst

  // Explicit conversions (the instructions sxe exists to eliminate).
  Movsx8,  ///< dst = sext8to64(src)
  Movsx16, ///< dst = sext16to64(src)
  Movsx32, ///< dst = sext32to64(src) (movsxd)
  Movzx8,  ///< dst = src & 0xFF
  Movzx16, ///< dst = src & 0xFFFF

  CmpSet, ///< dst = (src0 <Pred> src1) ? 1 : 0; Width picks cmpl/cmpq

  // Floating point through the xmm0/xmm1 scratch pair (no XMM allocation
  // in the baseline allocator; doubles travel in GPRs as bit patterns).
  FAdd, ///< dst = fp(src0) + fp(src1)
  FSub,
  FMul,
  FDiv,
  FNeg,     ///< dst = -fp(src0)
  CvtSi2Sd, ///< dst = double(int64(src0))

  LoadParam, ///< dst = incoming argument #Imm

  // Calls.
  CallFn,     ///< [dst =] module function #Callee(src0, src1, ...)
  CallHelper, ///< [dst =] Helper(ctx, src0, ...); Imm carries the payload
              ///< (element type, trap kind, or compare predicate)

  // Control flow (must terminate their block).
  TestJnz, ///< if (src0 != 0) goto Succs[0] else Succs[1]
  JmpB,    ///< goto Succs[0]
  RetR,    ///< return src0 (or 0 when no source)

  // Register-allocator output.
  SpillStore, ///< frame slot #Imm = src0
  SpillLoad,  ///< dst = frame slot #Imm
};

/// Printable mnemonic of \p Op.
const char *mopName(MOp Op);

class MBlock;

/// One machine instruction.
struct MInst {
  MOp Op;
  Width W = Width::W64;      ///< 32/64-bit form of ALU ops and CmpSet.
  CmpPred Pred = CmpPred::EQ; ///< CmpSet predicate.
  MHelper Helper = MHelper::None;
  uint32_t Def = MNoReg;
  /// Use operands. For two-address ALU ops Uses[0] is the destination
  /// register read-modify-written (and equals Def).
  std::vector<uint32_t> Uses;
  int64_t Imm = 0;      ///< Immediate / slot index / helper payload.
  uint32_t Callee = 0;  ///< CallFn: module function index.
  MBlock *Succs[2] = {nullptr, nullptr};
  /// Linear position assigned by LiveIntervals::number(); even numbers,
  /// so spill code can conceptually sit between positions.
  uint32_t Pos = 0;

  explicit MInst(MOp Op) : Op(Op) {}

  bool isCall() const { return Op == MOp::CallFn || Op == MOp::CallHelper; }
  bool isTerminator() const {
    return Op == MOp::TestJnz || Op == MOp::JmpB || Op == MOp::RetR ||
           (Op == MOp::CallHelper && Helper == MHelper::Trap);
  }
  unsigned numSuccessors() const {
    if (Op == MOp::TestJnz)
      return 2;
    if (Op == MOp::JmpB)
      return 1;
    return 0;
  }
};

/// One machine basic block: straight-line MInsts ending in a terminator.
class MBlock {
public:
  MBlock(uint32_t Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  uint32_t id() const { return Id; }
  const std::string &name() const { return Name; }

  std::vector<MInst> Insts;

  /// Dynamic step cost charged against the interpreter-equivalent fuel
  /// budget when this block executes: the number of source IR
  /// instructions it lowers (the emitter decrements the context's fuel by
  /// this amount at the block head).
  uint32_t FuelCost = 0;

  /// The source IR block (for frequency-weighted cycle estimates); null
  /// for synthetic blocks.
  const BasicBlock *Source = nullptr;

private:
  uint32_t Id;
  std::string Name;
};

/// One lowered function.
class MFunction {
public:
  MFunction(const Function *Source, uint32_t Index)
      : Source(Source), Index(Index) {}

  const Function *source() const { return Source; }
  const std::string &name() const { return Source->name(); }
  /// Position of this function in the module's function table (the
  /// indirect-call index).
  uint32_t index() const { return Index; }

  std::vector<std::unique_ptr<MBlock>> Blocks;

  /// First machine vreg number not in use; lowering temps come from here.
  uint32_t NextVirtReg = FirstVirtReg;

  uint32_t newVirtReg() { return NextVirtReg++; }

  /// Number of incoming parameters (vregs FirstVirtReg..FirstVirtReg+N-1).
  uint32_t NumParams = 0;

  /// Spill slots assigned by the register allocator.
  uint32_t NumSpillSlots = 0;

  /// Largest argument count of any call in the body (sizes the outgoing
  /// argument area).
  uint32_t MaxCallArgs = 0;

  MBlock *createBlock(const std::string &Name) {
    Blocks.push_back(
        std::make_unique<MBlock>(static_cast<uint32_t>(Blocks.size()), Name));
    return Blocks.back().get();
  }

  size_t countInsts() const {
    size_t N = 0;
    for (const auto &B : Blocks)
      N += B->Insts.size();
    return N;
  }

private:
  const Function *Source;
  uint32_t Index;
};

/// A lowered module: one MFunction per IR function, in module order (the
/// function-table index space).
struct MModule {
  const Module *Source = nullptr;
  std::vector<std::unique_ptr<MFunction>> Functions;

  MFunction *find(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }
};

/// Renders \p MF as text (for tests and --dump-mir debugging).
std::string printMachineFunction(const MFunction &MF);

/// Renders every function of \p MM.
std::string printMachineModule(const MModule &MM);

} // namespace sxe

#endif // SXE_CODEGEN_MACHINEIR_H
