//===- codegen/RegAlloc.cpp - Linear-scan register allocation ----------------===//

#include "codegen/RegAlloc.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace sxe;

namespace {

constexpr uint32_t CalleeSavedPool[] = {RBX, R12, R13, R14};
constexpr uint32_t CallerSavedPool[] = {RSI, RDI, R8, R9, R10, R11};
constexpr size_t NoVictim = ~static_cast<size_t>(0);

bool isCalleeSaved(uint32_t Reg) {
  return Reg == RBX || Reg == R12 || Reg == R13 || Reg == R14;
}

/// The linear scan proper: walks intervals by ascending start, expires
/// finished actives, and either assigns a free register from the interval's
/// allowed pool or spills the furthest-ending conflicting interval.
void runLinearScan(std::vector<LiveInterval> &Intervals,
                   const RegAllocOptions &Opts, RegAllocResult &Result) {
  uint32_t NumCallee = std::min<uint32_t>(Opts.MaxCalleeSaved, 4);
  uint32_t NumCaller = std::min<uint32_t>(Opts.MaxCallerSaved, 6);

  bool Free[NumPhysRegs] = {};
  for (uint32_t Index = 0; Index < NumCallee; ++Index)
    Free[CalleeSavedPool[Index]] = true;
  for (uint32_t Index = 0; Index < NumCaller; ++Index)
    Free[CallerSavedPool[Index]] = true;

  std::vector<size_t> Active; // Indices into Intervals, unordered.

  for (size_t Idx = 0; Idx < Intervals.size(); ++Idx) {
    LiveInterval &LI = Intervals[Idx];

    // Expire intervals that ended before this one starts.
    for (size_t AI = 0; AI < Active.size();) {
      if (Intervals[Active[AI]].End < LI.Start) {
        Free[Intervals[Active[AI]].PhysReg] = true;
        Active[AI] = Active.back();
        Active.pop_back();
      } else {
        ++AI;
      }
    }

    // Values that must survive a call can only live in callee-saved
    // registers; everything else prefers caller-saved so the callee-saved
    // pool stays available for call-crossing ranges.
    uint32_t Reg = MNoReg;
    if (!LI.CrossesCall)
      for (uint32_t Index = 0; Index < NumCaller && Reg == MNoReg; ++Index)
        if (Free[CallerSavedPool[Index]])
          Reg = CallerSavedPool[Index];
    for (uint32_t Index = 0; Index < NumCallee && Reg == MNoReg; ++Index)
      if (Free[CalleeSavedPool[Index]])
        Reg = CalleeSavedPool[Index];

    if (Reg != MNoReg) {
      LI.PhysReg = Reg;
      Free[Reg] = false;
      Active.push_back(Idx);
      continue;
    }

    // No free register: spill whoever ends furthest (dreavm's heuristic),
    // provided its register is one this interval may use at all.
    size_t Victim = NoVictim;
    for (size_t AI : Active) {
      if (LI.CrossesCall && !isCalleeSaved(Intervals[AI].PhysReg))
        continue;
      if (Victim == NoVictim || Intervals[AI].End > Intervals[Victim].End)
        Victim = AI;
    }
    if (Victim != NoVictim && Intervals[Victim].End > LI.End) {
      LI.PhysReg = Intervals[Victim].PhysReg;
      Intervals[Victim].PhysReg = MNoReg;
      Intervals[Victim].Slot = Result.NumSpillSlots++;
      ++Result.NumSpilledIntervals;
      Active.erase(std::find(Active.begin(), Active.end(), Victim));
      Active.push_back(Idx);
    } else {
      LI.Slot = Result.NumSpillSlots++;
      ++Result.NumSpilledIntervals;
    }
  }
}

/// Post-scan rewrite: replaces vregs with physical registers, inserts
/// SpillLoad/SpillStore through the reserved scratches, and turns spilled
/// call operands into slot references the emitter stages from the frame.
class SpillRewriter {
public:
  SpillRewriter(MFunction &MF, const std::vector<LiveInterval> &Intervals,
                RegAllocResult &Result)
      : MF(MF), Result(Result) {
    uint32_t NumVRegs = MF.NextVirtReg - FirstVirtReg;
    Phys.assign(NumVRegs, MNoReg);
    Slot.assign(NumVRegs, MNoReg);
    for (const LiveInterval &LI : Intervals) {
      Phys[LI.VReg - FirstVirtReg] = LI.PhysReg;
      Slot[LI.VReg - FirstVirtReg] = LI.Slot;
    }
  }

  void run() {
    for (auto &B : MF.Blocks)
      rewriteBlock(*B);
  }

private:
  bool isSpilled(uint32_t VReg) const {
    return Slot[VReg - FirstVirtReg] != MNoReg;
  }
  uint32_t physOf(uint32_t VReg) const { return Phys[VReg - FirstVirtReg]; }
  uint32_t slotOf(uint32_t VReg) const { return Slot[VReg - FirstVirtReg]; }

  /// Call pseudos carry spilled operands as slot references; the emitter
  /// stages them via its own scratch, one at a time.
  uint32_t mapCallOperand(uint32_t VReg) const {
    if (!isVirtReg(VReg))
      return VReg;
    if (isSpilled(VReg))
      return slotRef(slotOf(VReg));
    uint32_t Reg = physOf(VReg);
    if (Reg == MNoReg)
      sxeUnreachable("call operand vreg has no assignment");
    return Reg;
  }

  void rewriteBlock(MBlock &B) {
    std::vector<MInst> Out;
    Out.reserve(B.Insts.size());
    for (MInst I : B.Insts) {
      if (I.isCall()) {
        for (uint32_t &U : I.Uses)
          U = mapCallOperand(U);
        if (I.Def != MNoReg)
          I.Def = mapCallOperand(I.Def);
        Out.push_back(std::move(I));
        continue;
      }

      // Distinct spilled use vregs take the scratches in appearance order.
      // Non-call instructions have at most two use operands, so two
      // scratches always suffice.
      uint32_t SpilledUse[2] = {MNoReg, MNoReg};
      const uint32_t Scratch[2] = {RAX, RDX};
      unsigned NumSpilledUses = 0;
      for (uint32_t U : I.Uses) {
        if (!isVirtReg(U) || !isSpilled(U))
          continue;
        if (U == SpilledUse[0] || U == SpilledUse[1])
          continue;
        assert(NumSpilledUses < 2 && "more than two spilled uses");
        SpilledUse[NumSpilledUses++] = U;
      }
      for (unsigned Index = 0; Index < NumSpilledUses; ++Index) {
        MInst Load(MOp::SpillLoad);
        Load.Def = Scratch[Index];
        Load.Imm = static_cast<int64_t>(slotOf(SpilledUse[Index]));
        Out.push_back(Load);
        ++Result.NumSpillLoads;
      }

      auto ScratchOf = [&](uint32_t VReg) -> uint32_t {
        for (unsigned Index = 0; Index < NumSpilledUses; ++Index)
          if (SpilledUse[Index] == VReg)
            return Scratch[Index];
        return MNoReg;
      };

      for (uint32_t &U : I.Uses) {
        if (!isVirtReg(U))
          continue;
        uint32_t S = ScratchOf(U);
        U = S != MNoReg ? S : physOf(U);
        if (U == MNoReg)
          sxeUnreachable("use of vreg with no assignment");
      }

      bool StoreDef = false;
      uint32_t DefSlot = 0;
      if (I.Def != MNoReg && isVirtReg(I.Def)) {
        if (isSpilled(I.Def)) {
          // Every emitter pattern reads its sources before writing the
          // destination, so reusing a use scratch (or RAX) is safe; the
          // two-address forms share the scratch with Uses[0] by
          // construction.
          uint32_t S = ScratchOf(I.Def);
          DefSlot = slotOf(I.Def);
          I.Def = S != MNoReg ? S : RAX;
          StoreDef = true;
        } else {
          I.Def = physOf(I.Def);
          if (I.Def == MNoReg)
            sxeUnreachable("def of vreg with no assignment");
        }
      }

      uint32_t StoreSrc = I.Def;
      Out.push_back(std::move(I));
      if (StoreDef) {
        MInst Store(MOp::SpillStore);
        Store.Uses = {StoreSrc};
        Store.Imm = static_cast<int64_t>(DefSlot);
        Out.push_back(Store);
        ++Result.NumSpillStores;
      }
    }
    B.Insts = std::move(Out);
  }

  MFunction &MF;
  RegAllocResult &Result;
  std::vector<uint32_t> Phys;
  std::vector<uint32_t> Slot;
};

} // namespace

RegAllocResult sxe::allocateRegisters(MFunction &MF,
                                      const RegAllocOptions &Opts) {
  RegAllocResult Result;
  std::vector<LiveInterval> Intervals = computeLiveIntervals(MF);
  runLinearScan(Intervals, Opts, Result);
  SpillRewriter(MF, Intervals, Result).run();
  MF.NumSpillSlots = Result.NumSpillSlots;
  Result.Intervals = std::move(Intervals);
  return Result;
}
