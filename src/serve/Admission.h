//===- serve/Admission.h - Admission control and load shedding ---*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's admission controller: decides, before a request touches
/// the compile queue, whether it can plausibly be served within its
/// deadline budget — and sheds it with a typed OverloadError when it
/// cannot.
///
/// Two gates, both cheap enough for the accept path:
///
///   1. Bounded depth: at most MaxQueueDepth requests may be in flight
///      (admitted but not completed). Beyond that the queue is refusing
///      to absorb more backlog regardless of deadlines.
///   2. Deadline feasibility: the controller keeps a sliding window of
///      recent queue-wait samples (how long admitted requests actually
///      sat in the CompileQueue before a worker picked them up). When
///      the window's p99 exceeds a request's deadline budget, the
///      request would almost certainly expire in queue — shedding it at
///      the door is cheaper than letting a worker discover the miss.
///
/// Rejections are *typed* (QueueFull vs DeadlineBudget) so clients can
/// distinguish "back off and retry" from "raise your deadline". The
/// controller is thread-safe; the daemon calls tryAdmit from connection
/// handler threads and onComplete with the queue-wait the service
/// measured.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_SERVE_ADMISSION_H
#define SXE_SERVE_ADMISSION_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sxe {

struct AdmissionOptions {
  /// Maximum requests in flight (admitted, not yet completed).
  size_t MaxQueueDepth = 256;
  /// Deadline budget assumed for requests that do not carry one; 0
  /// disables the p99 gate for such requests.
  uint64_t DefaultDeadlineNanos = 0;
  /// Sliding-window size for queue-wait samples.
  size_t WindowSize = 512;
};

/// Why a request was shed.
struct OverloadError {
  enum class Cause : uint8_t {
    QueueFull,      ///< In-flight depth hit MaxQueueDepth.
    DeadlineBudget, ///< Queue-wait p99 exceeds the request's budget.
  };
  Cause TheCause = Cause::QueueFull;
  size_t QueueDepth = 0;
  uint64_t QueueWaitP99Nanos = 0;
  uint64_t DeadlineBudgetNanos = 0;

  /// Human-readable rejection reason for the reply's error field.
  std::string message() const;
};

struct AdmissionStats {
  uint64_t Admitted = 0;
  uint64_t RejectedQueueFull = 0;
  uint64_t RejectedDeadline = 0;
};

class AdmissionController {
public:
  explicit AdmissionController(AdmissionOptions Options = {});

  /// Admits or sheds one request. \p DeadlineBudgetNanos is the request's
  /// relative budget (0 = use the default; if that is also 0 the p99 gate
  /// is skipped). On admission the in-flight depth is incremented and the
  /// caller must pair it with onComplete(). On rejection \p Err describes
  /// the cause.
  bool tryAdmit(uint64_t DeadlineBudgetNanos, OverloadError &Err);

  /// Completes one admitted request: decrements the depth and records its
  /// measured queue wait in the sliding window.
  void onComplete(uint64_t QueueWaitNanos);

  /// Current p99 of the queue-wait window (0 until a sample exists).
  uint64_t queueWaitP99Nanos() const;

  /// Current in-flight depth.
  size_t depth() const;

  AdmissionStats stats() const;

  const AdmissionOptions &options() const { return Options; }

private:
  uint64_t p99Locked() const;

  AdmissionOptions Options;
  mutable std::mutex Mu;
  /// Ring buffer of the last WindowSize queue-wait samples.
  std::vector<uint64_t> Window;
  size_t WindowNext = 0;
  size_t WindowCount = 0;
  size_t Depth = 0;
  AdmissionStats Counters;
};

} // namespace sxe

#endif // SXE_SERVE_ADMISSION_H
