//===- serve/Daemon.h - Unix-socket compile-serving daemon -------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production compile server: a unix-domain-socket daemon that
/// exposes the batch compile API (jit/CompileService.h) over the framed
/// protocol of serve/Protocol.h. Each accepted connection gets a handler
/// thread speaking request/reply frames; compile requests pass through
/// the admission controller (serve/Admission.h) before touching the
/// compile queue, so overload is shed at the door with typed errors
/// instead of unbounded queueing.
///
/// The daemon owns the whole serving stack:
///
///   connection handlers -> AdmissionController -> CompileService
///                                                  |- CodeCache (memory)
///                                                  '- PersistentCache (disk)
///
/// plus the MetricsRegistry every layer feeds, exported over the wire via
/// MetricsQuery frames. Deadlines compose across layers: the client's
/// relative budget becomes an absolute CompileRequest::DeadlineNanos, the
/// admission controller sheds requests whose budget the current queue-wait
/// p99 already exceeds, and the service sheds queued requests whose
/// deadline expires before a worker reaches them.
///
/// Graceful drain (SIGTERM path): requestStop() is async-signal-safe (one
/// atomic store). stop() then stops accepting connections, refuses *new*
/// compile frames with a `shutdown`-kind reply, lets every already-
/// admitted request finish and deliver its reply, joins the handlers and
/// workers, flushes the persistent cache index, and unlinks the socket.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_SERVE_DAEMON_H
#define SXE_SERVE_DAEMON_H

#include "jit/CodeCache.h"
#include "jit/CompileService.h"
#include "jit/PersistentCache.h"
#include "obs/EventLog.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceContext.h"
#include "serve/Admission.h"
#include "serve/Protocol.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sxe {

struct ServeDaemonOptions {
  /// Path the unix socket is bound at (unlinked and replaced if present).
  std::string SocketPath;
  /// Compile worker threads (0 is promoted to 1; the daemon is for
  /// serving, not for the deterministic inline mode).
  unsigned Jobs = 2;
  /// Admission control: queue depth bound, default deadline, p99 window.
  AdmissionOptions Admission;
  /// In-memory code cache sizing.
  CodeCacheOptions MemoryCache;
  /// Persistent on-disk cache directory; empty disables the tier.
  std::string CacheDir;
  /// Byte budget of the persistent tier.
  uint64_t CacheMaxBytes = 256ull << 20;
  /// Collect optimization remarks on every compile so replies (and cache
  /// hits) can replay them when the client asks.
  bool CollectRemarks = true;
  /// Request-scoped tracing and the structured event log. Off, the
  /// daemon emits no spans or events (the flight recorder stays armed —
  /// it is the post-mortem channel and costs one wait-free ring write
  /// per lifecycle event).
  bool Tracing = true;
  /// Slots in the crash-safe flight-recorder ring.
  size_t FlightCapacity = 2048;
  /// When non-empty, stop() writes the stitched sxe.trace.v1 document
  /// here.
  std::string TraceFile;
  /// When non-empty, stop() writes the sxe.events.v1 JSONL stream here.
  std::string EventsFile;
};

/// The compile-serving daemon. Construct, start(), then run() (or poll
/// stopRequested() yourself) and stop().
class ServeDaemon {
public:
  explicit ServeDaemon(ServeDaemonOptions Options);

  /// Calls stop().
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon &) = delete;
  ServeDaemon &operator=(const ServeDaemon &) = delete;

  /// Binds the socket and starts the accept loop. False + \p Error when
  /// the socket cannot be bound.
  bool start(std::string &Error);

  /// Flags the daemon to stop. Async-signal-safe: a SIGTERM handler may
  /// call this directly. The actual drain happens in run()/stop().
  void requestStop() { Stop.store(true, std::memory_order_relaxed); }

  bool stopRequested() const {
    return Stop.load(std::memory_order_relaxed);
  }

  /// Blocks until requestStop() (from a signal handler or a Shutdown
  /// frame), then drains via stop().
  void run();

  /// Graceful drain: stop accepting, refuse new compiles, finish admitted
  /// work, join everything, flush the persistent index, unlink the
  /// socket. Idempotent.
  void stop();

  const std::string &socketPath() const { return Options.SocketPath; }
  MetricsRegistry &metricsRegistry() { return Metrics; }
  CompileService &service() { return *Service; }
  CodeCache &memoryCache() { return Cache; }
  PersistentCache *persistent() { return Persistent.get(); }
  AdmissionController &admission() { return Admission; }
  TraceCollector &traceCollector() { return Trace; }
  EventLog &eventLog() { return Events; }
  FlightRecorder &flightRecorder() { return Flight; }

  /// Total connections accepted since start().
  uint64_t connectionsAccepted() const {
    return ConnectionsAccepted.load(std::memory_order_relaxed);
  }

private:
  void acceptLoop();
  void handleConnection(int Fd, uint64_t ConnId);
  /// Serves one decoded compile request end to end (admission -> service
  /// -> reply); never throws. \p Ctx is the request's resolved trace
  /// identity (minted by the daemon when the client sent none).
  ServeReply serveCompile(ServeRequest Request, TraceContext Ctx);
  static ServeReply errorReply(ServeErrorKind Kind, std::string Message);
  /// Seconds since start(), pushed into sxe_uptime_seconds at export
  /// points.
  void refreshUptime();

  ServeDaemonOptions Options;
  MetricsRegistry Metrics;
  CodeCache Cache;
  std::unique_ptr<PersistentCache> Persistent;
  /// Flight ring outlives the log that mirrors into it.
  FlightRecorder Flight;
  EventLog Events;
  TraceCollector Trace;
  std::unique_ptr<CompileService> Service;
  AdmissionController Admission;

  Counter *ConnectionsMetric = nullptr;
  Counter *RequestsMetric = nullptr;
  Gauge *InflightMetric = nullptr;
  Gauge *UptimeMetric = nullptr;
  uint64_t StartNanos = 0;
  /// Daemon-assigned dense request ids (1-based).
  std::atomic<uint64_t> NextRequestId{1};

  int ListenFd = -1;
  std::thread AcceptThread;
  std::mutex ConnMu;
  std::vector<std::thread> Handlers;
  std::vector<int> ConnFds;

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> ConnectionsAccepted{0};
  bool Started = false;
  bool Stopped = false;
};

} // namespace sxe

#endif // SXE_SERVE_DAEMON_H
