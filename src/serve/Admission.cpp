//===- serve/Admission.cpp - Admission control and load shedding ----------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "serve/Admission.h"

#include <algorithm>
#include <cstdio>

namespace sxe {

std::string OverloadError::message() const {
  char Buf[192];
  if (TheCause == Cause::QueueFull) {
    std::snprintf(Buf, sizeof(Buf),
                  "overloaded: %zu requests in flight (limit reached)",
                  QueueDepth);
  } else {
    std::snprintf(Buf, sizeof(Buf),
                  "overloaded: queue-wait p99 %.3f ms exceeds deadline "
                  "budget %.3f ms",
                  QueueWaitP99Nanos / 1e6, DeadlineBudgetNanos / 1e6);
  }
  return Buf;
}

AdmissionController::AdmissionController(AdmissionOptions Opts)
    : Options(Opts) {
  if (Options.MaxQueueDepth == 0)
    Options.MaxQueueDepth = 1;
  if (Options.WindowSize == 0)
    Options.WindowSize = 1;
  Window.resize(Options.WindowSize, 0);
}

uint64_t AdmissionController::p99Locked() const {
  if (WindowCount == 0)
    return 0;
  // nth_element over a copy: the window is small (hundreds of samples)
  // and tryAdmit is far off the compile hot path.
  std::vector<uint64_t> Sorted(Window.begin(),
                               Window.begin() +
                                   static_cast<ptrdiff_t>(WindowCount));
  size_t Rank = (WindowCount * 99) / 100;
  if (Rank >= WindowCount)
    Rank = WindowCount - 1;
  std::nth_element(Sorted.begin(),
                   Sorted.begin() + static_cast<ptrdiff_t>(Rank),
                   Sorted.end());
  return Sorted[Rank];
}

bool AdmissionController::tryAdmit(uint64_t DeadlineBudgetNanos,
                                   OverloadError &Err) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Depth >= Options.MaxQueueDepth) {
    Err.TheCause = OverloadError::Cause::QueueFull;
    Err.QueueDepth = Depth;
    Err.QueueWaitP99Nanos = p99Locked();
    Err.DeadlineBudgetNanos = DeadlineBudgetNanos;
    ++Counters.RejectedQueueFull;
    return false;
  }
  uint64_t Budget =
      DeadlineBudgetNanos ? DeadlineBudgetNanos : Options.DefaultDeadlineNanos;
  if (Budget) {
    uint64_t P99 = p99Locked();
    if (P99 > Budget) {
      Err.TheCause = OverloadError::Cause::DeadlineBudget;
      Err.QueueDepth = Depth;
      Err.QueueWaitP99Nanos = P99;
      Err.DeadlineBudgetNanos = Budget;
      ++Counters.RejectedDeadline;
      return false;
    }
  }
  ++Depth;
  ++Counters.Admitted;
  return true;
}

void AdmissionController::onComplete(uint64_t QueueWaitNanos) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Depth > 0)
    --Depth;
  Window[WindowNext] = QueueWaitNanos;
  WindowNext = (WindowNext + 1) % Window.size();
  if (WindowCount < Window.size())
    ++WindowCount;
}

uint64_t AdmissionController::queueWaitP99Nanos() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return p99Locked();
}

size_t AdmissionController::depth() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Depth;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}

} // namespace sxe
