//===- serve/Daemon.cpp - Unix-socket compile-serving daemon --------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "serve/Daemon.h"

#include "support/Json.h"
#include "support/Timer.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sxe {

ServeDaemon::ServeDaemon(ServeDaemonOptions Opts)
    : Options(std::move(Opts)), Cache(Options.MemoryCache),
      Flight(Options.FlightCapacity), Events(&Flight),
      Admission(Options.Admission) {
  if (Options.Jobs == 0)
    Options.Jobs = 1;
  if (!Options.CacheDir.empty()) {
    PersistentCacheOptions PCache;
    PCache.Dir = Options.CacheDir;
    PCache.MaxBytes = Options.CacheMaxBytes;
    Persistent = std::make_unique<PersistentCache>(PCache);
  }
  CompileServiceOptions SvcOpts;
  SvcOpts.Jobs = Options.Jobs;
  SvcOpts.Cache = &Cache;
  SvcOpts.Persistent = Persistent.get();
  SvcOpts.Metrics = &Metrics;
  SvcOpts.CollectRemarks = Options.CollectRemarks;
  if (Options.Tracing) {
    SvcOpts.Trace = &Trace;
    SvcOpts.Events = &Events;
  }
  Service = std::make_unique<CompileService>(SvcOpts);

  ConnectionsMetric =
      &Metrics.counter("sxe_serve_connections_total",
                       "Connections accepted by the serve daemon");
  RequestsMetric =
      &Metrics.counter("sxe_serve_requests_total",
                       "Compile requests received by the serve daemon");
  InflightMetric = &Metrics.gauge(
      "sxe_serve_inflight", "Admitted compile requests currently in flight");
  UptimeMetric = &registerBuildInfoMetrics(Metrics);
}

ServeDaemon::~ServeDaemon() { stop(); }

bool ServeDaemon::start(std::string &Error) {
  if (Started) {
    Error = "daemon already started";
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Options.SocketPath.empty() ||
      Options.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "invalid socket path '" + Options.SocketPath + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, Options.SocketPath.c_str(),
              Options.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A previous daemon's stale socket file would make bind fail; replace it.
  ::unlink(Options.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = std::string("bind ") + Options.SocketPath + ": " +
            std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 64) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Options.SocketPath.c_str());
    return false;
  }
  AcceptThread = std::thread(&ServeDaemon::acceptLoop, this);
  Started = true;
  StartNanos = wallNowNanos();
  if (Options.Tracing)
    Events.log(ObsEventKind::DaemonStart, {}, Options.SocketPath,
               {{"jobs", std::to_string(Options.Jobs)},
                {"version", buildVersion()},
                {"git_sha", buildGitSha()}});
  else
    Flight.record(ObsEventKind::DaemonStart, wallNowNanos(), 0, 0,
                  Options.SocketPath.c_str());
  return true;
}

void ServeDaemon::refreshUptime() {
  if (!StartNanos)
    return;
  UptimeMetric->set(
      static_cast<int64_t>((wallNowNanos() - StartNanos) / 1000000000ull));
}

void ServeDaemon::acceptLoop() {
  while (!stopRequested()) {
    // Poll with a timeout so requestStop() is noticed promptly even when
    // no connection ever arrives.
    pollfd Poll;
    Poll.fd = ListenFd;
    Poll.events = POLLIN;
    Poll.revents = 0;
    int Ready = ::poll(&Poll, 1, /*timeout_ms=*/100);
    if (Ready <= 0)
      continue; // Timeout or EINTR; re-check the stop flag.
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    uint64_t ConnId =
        ConnectionsAccepted.fetch_add(1, std::memory_order_relaxed) + 1;
    ConnectionsMetric->inc();
    std::lock_guard<std::mutex> Lock(ConnMu);
    if (stopRequested()) {
      ::close(Fd);
      break;
    }
    ConnFds.push_back(Fd);
    Handlers.emplace_back(&ServeDaemon::handleConnection, this, Fd, ConnId);
  }
}

ServeReply ServeDaemon::errorReply(ServeErrorKind Kind, std::string Message) {
  ServeReply Reply;
  Reply.Ok = false;
  Reply.ErrorKind = Kind;
  Reply.Error = std::move(Message);
  return Reply;
}

ServeReply ServeDaemon::serveCompile(ServeRequest Request, TraceContext Ctx) {
  RequestsMetric->inc();
  std::string DisplayName = Request.Name.empty() ? "<request>" : Request.Name;
  const TargetInfo *Target = serveTargetByName(Request.Target);
  if (!Target)
    return errorReply(ServeErrorKind::Protocol,
                      "unknown target '" + Request.Target + "'");
  Variant V;
  if (!serveVariantByName(Request.Variant, V))
    return errorReply(ServeErrorKind::Protocol,
                      "unknown variant '" + Request.Variant + "'");

  uint64_t BudgetNanos = Request.DeadlineMillis * 1000000ull;
  OverloadError Overload;
  if (!Admission.tryAdmit(BudgetNanos, Overload)) {
    // Load-shed rejections share the service's Rejected ledger and
    // sxe_rejects_total with enqueue-after-shutdown refusals.
    Service->countRejected();
    if (Options.Tracing)
      Events.log(ObsEventKind::Shed, Ctx, DisplayName,
                 {{"cause", Overload.message()},
                  {"queue_depth", std::to_string(Overload.QueueDepth)}});
    return errorReply(ServeErrorKind::Overload, Overload.message());
  }
  InflightMetric->set(static_cast<int64_t>(Admission.depth()));
  if (Options.Tracing) {
    std::vector<std::pair<std::string, std::string>> Fields;
    if (Request.DeadlineMillis)
      Fields.emplace_back("deadline_ms",
                          std::to_string(Request.DeadlineMillis));
    if (Request.ClientRequestId)
      Fields.emplace_back("client_request_id",
                          std::to_string(Request.ClientRequestId));
    Events.log(ObsEventKind::Admit, Ctx, DisplayName, std::move(Fields));
  }

  CompileRequest Compile;
  Compile.Name = DisplayName;
  Compile.Source = std::move(Request.Source);
  Compile.Config = PipelineConfig::forVariant(V, *Target);
  Compile.Hotness = Request.Hotness;
  Compile.TraceId = Ctx.TraceId;
  Compile.RequestId = Ctx.RequestId;
  uint64_t EffectiveBudget =
      BudgetNanos ? BudgetNanos : Admission.options().DefaultDeadlineNanos;
  if (EffectiveBudget)
    Compile.DeadlineNanos = wallNowNanos() + EffectiveBudget;

  CompileResult Result = Service->enqueue(std::move(Compile)).get();
  Admission.onComplete(Result.QueueWaitNanos);
  InflightMetric->set(static_cast<int64_t>(Admission.depth()));

  ServeReply Reply;
  Reply.QueueWaitNanos = Result.QueueWaitNanos;
  Reply.WallNanos = Result.WallNanos;
  if (Result.Rejected) {
    Reply.ErrorKind = ServeErrorKind::Shutdown;
    Reply.Error = Result.Error.empty() ? "compile service is shut down"
                                       : Result.Error;
    return Reply;
  }
  if (Result.DeadlineMiss) {
    Reply.ErrorKind = ServeErrorKind::Deadline;
    Reply.Error = Result.Error.empty() ? "deadline expired" : Result.Error;
    return Reply;
  }
  if (!Result.Ok || !Result.Code) {
    Reply.ErrorKind = Result.Error.rfind("parse error:", 0) == 0
                          ? ServeErrorKind::Parse
                          : ServeErrorKind::Pipeline;
    Reply.Error = Result.Error;
    return Reply;
  }

  Reply.Ok = true;
  Reply.Tier = Result.PersistentHit ? ServeTier::Persistent
               : Result.CacheHit   ? ServeTier::Memory
                                   : ServeTier::Compiled;
  Reply.InputIRHash = Result.Code->InputIRHash;
  if (Request.WantIR)
    Reply.IRText = Result.Code->IRText;
  for (const StatEntry &Entry : Result.Code->Stats.entries())
    Reply.Stats.push_back(Entry);
  if (Request.CollectRemarks)
    Reply.RemarksJsonl = remarksToJsonl(Result.Code->Remarks);
  return Reply;
}

void ServeDaemon::handleConnection(int Fd, uint64_t ConnId) {
  if (Options.Tracing)
    Trace.nameThread("conn-" + std::to_string(ConnId));
  while (true) {
    FrameType Type;
    std::string Payload;
    std::string Error;
    if (!readFrame(Fd, Type, Payload, Error))
      break; // EOF (client done) or a protocol violation; drop the conn.

    bool WroteReply = false;
    std::string WriteError;
    switch (Type) {
    case FrameType::Ping:
      WroteReply = writeFrame(Fd, FrameType::Pong, "", WriteError);
      break;
    case FrameType::MetricsQuery: {
      refreshUptime();
      JsonWriter J;
      J.beginObject();
      J.keyValue("schema", kServeSchema);
      J.keyValue("prometheus", Metrics.toPrometheus());
      J.endObject();
      WroteReply = writeFrame(Fd, FrameType::MetricsReply, J.str(),
                              WriteError);
      break;
    }
    case FrameType::Dump: {
      // On-demand flight-recorder dump: the same sxe.flight.v1 JSONL a
      // fatal signal would write, delivered over the wire.
      if (Options.Tracing)
        Events.log(ObsEventKind::Dump, {}, "conn-" + std::to_string(ConnId));
      else
        Flight.record(ObsEventKind::Dump, wallNowNanos(), 0, 0, "dump");
      WroteReply = writeFrame(Fd, FrameType::DumpReply,
                              Flight.dumpToString(), WriteError);
      break;
    }
    case FrameType::Shutdown:
      WroteReply = writeFrame(Fd, FrameType::ShutdownAck, "", WriteError);
      requestStop();
      break;
    case FrameType::Compile: {
      ServeReply Reply;
      TraceContext Ctx;
      uint64_t ServeStart = wallNowNanos();
      std::string SpanName = "<request>";
      if (stopRequested()) {
        Reply = errorReply(ServeErrorKind::Shutdown, "daemon is draining");
      } else {
        ServeRequest Request;
        std::string DecodeError;
        if (!decodeServeRequest(Payload, Request, DecodeError)) {
          Reply = errorReply(ServeErrorKind::Protocol, DecodeError);
        } else {
          // The client's trace id when it sent one; minted here for
          // legacy id-less clients so every request stays joinable. The
          // request id is always daemon-assigned (dense, 1-based).
          Ctx.TraceId = Request.TraceId ? Request.TraceId : mintTraceId();
          Ctx.RequestId =
              NextRequestId.fetch_add(1, std::memory_order_relaxed);
          if (!Request.Name.empty())
            SpanName = Request.Name;
          Reply = serveCompile(std::move(Request), Ctx);
        }
      }
      Reply.TraceId = Ctx.TraceId;
      Reply.RequestId = Ctx.RequestId;
      if (Options.Tracing) {
        std::vector<std::pair<std::string, std::string>> Args;
        if (Ctx.TraceId)
          Args.emplace_back("trace_id", traceIdHex(Ctx.TraceId));
        if (Ctx.RequestId)
          Args.emplace_back("request_id", std::to_string(Ctx.RequestId));
        Args.emplace_back("status", Reply.Ok
                                        ? "ok"
                                        : serveErrorKindName(Reply.ErrorKind));
        if (Reply.Ok)
          Args.emplace_back("tier", serveTierName(Reply.Tier));
        Trace.addSpan("serve-request", "serve", ServeStart, wallNowNanos(),
                      Args);
        std::vector<std::pair<std::string, std::string>> Fields;
        Fields.emplace_back("status", Reply.Ok
                                          ? "ok"
                                          : serveErrorKindName(
                                                Reply.ErrorKind));
        if (Reply.Ok)
          Fields.emplace_back("tier", serveTierName(Reply.Tier));
        Events.log(ObsEventKind::Reply, Ctx, SpanName, std::move(Fields),
                   /*Aux=*/Reply.Ok ? 0 : static_cast<uint8_t>(
                                              Reply.ErrorKind));
      }
      WroteReply = writeFrame(Fd, FrameType::CompileReply,
                              encodeServeReply(Reply), WriteError);
      break;
    }
    default:
      // A client must not send reply-side frame types.
      WroteReply = false;
      break;
    }
    if (!WroteReply)
      break;
  }
  ::close(Fd);
  // Retire the descriptor so stop() never shutdown(2)s a recycled fd.
  std::lock_guard<std::mutex> Lock(ConnMu);
  for (int &Conn : ConnFds)
    if (Conn == Fd)
      Conn = -1;
}

void ServeDaemon::run() {
  while (!stopRequested())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop();
}

void ServeDaemon::stop() {
  if (Stopped)
    return;
  requestStop();
  if (AcceptThread.joinable())
    AcceptThread.join();
  // Unblock handlers parked in readFrame: they see EOF, finish any
  // in-flight request first (those are parked on the future, not the
  // read), deliver their replies, and exit.
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (int Conn : ConnFds)
      if (Conn >= 0)
        ::shutdown(Conn, SHUT_RD);
    ToJoin.swap(Handlers);
  }
  for (std::thread &Handler : ToJoin)
    if (Handler.joinable())
      Handler.join();
  if (Service)
    Service->shutdown();
  if (Persistent)
    Persistent->flushIndex();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Options.SocketPath.c_str());
  }
  if (Options.Tracing)
    Events.log(ObsEventKind::Drain, {}, Options.SocketPath,
               {{"requests",
                 std::to_string(
                     NextRequestId.load(std::memory_order_relaxed) - 1)}});
  else
    Flight.record(ObsEventKind::Drain, wallNowNanos(), 0, 0,
                  Options.SocketPath.c_str());
  refreshUptime();
  // Observability artifacts outlive the process on purpose: they are the
  // post-run inputs of tools/sxe-obs.
  if (!Options.TraceFile.empty())
    writeTextFile(Options.TraceFile, Trace.toJson());
  if (!Options.EventsFile.empty())
    writeTextFile(Options.EventsFile, Events.toJsonl());
  Stopped = true;
}

} // namespace sxe
