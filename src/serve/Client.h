//===- serve/Client.h - Compile-serving client library -----------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the serve protocol: connects to a ServeDaemon's
/// unix socket and speaks one frame round trip per call. One ServeClient
/// owns one connection; calls are synchronous request/reply, so a client
/// instance must not be shared across threads (open one per thread — the
/// daemon handles each connection independently).
///
/// connectTo() optionally retries until a budget expires, which is how
/// tools wait for a daemon that is still binding its socket.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_SERVE_CLIENT_H
#define SXE_SERVE_CLIENT_H

#include "obs/Trace.h"
#include "obs/TraceContext.h"
#include "serve/Protocol.h"

#include <cstdint>
#include <string>

namespace sxe {

class ServeClient {
public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Connects to the daemon at \p SocketPath. When \p RetryMillis is
  /// nonzero, failed attempts are retried every 20 ms until the budget
  /// expires (waiting out a daemon that is still starting).
  bool connectTo(const std::string &SocketPath, std::string &Error,
                 unsigned RetryMillis = 0);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Optional trace collector (not owned): every compile() records a
  /// client-side "request" span carrying the trace id, so the client's
  /// view of the round trip lands on its own track next to the daemon's
  /// worker spans in a stitched timeline.
  void setTrace(TraceCollector *Collector) { Trace = Collector; }

  /// One compile round trip. True when a CompileReply frame came back —
  /// inspect \p Reply.Ok / \p Reply.ErrorKind for the request's own
  /// outcome. False + \p Error on transport or framing failure.
  ///
  /// Trace identity: when \p Request.TraceId is 0 the client mints one
  /// before sending, so the daemon's spans, events, and exemplars for
  /// this request are joinable with the client's record of it. The id
  /// actually used is reported back in \p Reply.TraceId either way.
  bool compile(const ServeRequest &Request, ServeReply &Reply,
               std::string &Error);

  /// Liveness probe (Ping/Pong).
  bool ping(std::string &Error);

  /// Fetches the daemon's Prometheus metrics exposition.
  bool fetchMetrics(std::string &PrometheusText, std::string &Error);

  /// Asks the daemon for a graceful drain; returns once acknowledged.
  bool requestShutdown(std::string &Error);

  /// Fetches the daemon's flight-recorder dump (sxe.flight.v1 JSONL) via
  /// a Dump frame.
  bool fetchFlightDump(std::string &DumpJsonl, std::string &Error);

private:
  bool roundTrip(FrameType Send, const std::string &Payload,
                 FrameType Expect, std::string &ReplyPayload,
                 std::string &Error);

  int Fd = -1;
  TraceCollector *Trace = nullptr;
  /// Client-side request sequence, stamped as ClientRequestId when the
  /// caller left it 0.
  uint64_t NextClientRequestId = 1;
};

} // namespace sxe

#endif // SXE_SERVE_CLIENT_H
