//===- serve/Client.cpp - Compile-serving client library ------------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "support/Json.h"
#include "support/Timer.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sxe {

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

static int connectOnce(const std::string &SocketPath, std::string &Error) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "invalid socket path '" + SocketPath + "'";
    return -1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = std::string("connect ") + SocketPath + ": " +
            std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool ServeClient::connectTo(const std::string &SocketPath, std::string &Error,
                            unsigned RetryMillis) {
  close();
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(RetryMillis);
  while (true) {
    Fd = connectOnce(SocketPath, Error);
    if (Fd >= 0)
      return true;
    if (RetryMillis == 0 || std::chrono::steady_clock::now() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool ServeClient::roundTrip(FrameType Send, const std::string &Payload,
                            FrameType Expect, std::string &ReplyPayload,
                            std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return false;
  }
  if (!writeFrame(Fd, Send, Payload, Error))
    return false;
  FrameType Got;
  if (!readFrame(Fd, Got, ReplyPayload, Error))
    return false;
  if (Got != Expect) {
    Error = "unexpected reply frame type " +
            std::to_string(static_cast<unsigned>(Got));
    return false;
  }
  return true;
}

bool ServeClient::compile(const ServeRequest &Request, ServeReply &Reply,
                          std::string &Error) {
  // Mint the trace identity client-side so the daemon's spans and events
  // for this request join back to the client's record of it.
  ServeRequest Traced = Request;
  if (!Traced.TraceId)
    Traced.TraceId = mintTraceId();
  if (!Traced.ClientRequestId)
    Traced.ClientRequestId = NextClientRequestId++;

  uint64_t Start = wallNowNanos();
  std::string Payload;
  if (!roundTrip(FrameType::Compile, encodeServeRequest(Traced),
                 FrameType::CompileReply, Payload, Error))
    return false;
  if (!decodeServeReply(Payload, Reply, Error))
    return false;
  if (Trace) {
    std::vector<std::pair<std::string, std::string>> Args;
    Args.emplace_back("trace_id", traceIdHex(Traced.TraceId));
    if (Reply.RequestId)
      Args.emplace_back("request_id", std::to_string(Reply.RequestId));
    if (!Traced.Name.empty())
      Args.emplace_back("module", Traced.Name);
    Args.emplace_back("status",
                      Reply.Ok ? "ok" : serveErrorKindName(Reply.ErrorKind));
    Trace->addSpan("request", "client", Start, wallNowNanos(),
                   std::move(Args));
  }
  return true;
}

bool ServeClient::ping(std::string &Error) {
  std::string Payload;
  return roundTrip(FrameType::Ping, "", FrameType::Pong, Payload, Error);
}

bool ServeClient::fetchMetrics(std::string &PrometheusText,
                               std::string &Error) {
  std::string Payload;
  if (!roundTrip(FrameType::MetricsQuery, "", FrameType::MetricsReply,
                 Payload, Error))
    return false;
  JsonValue Doc;
  if (!parseJson(Payload, Doc, Error))
    return false;
  PrometheusText = Doc.stringField("prometheus");
  return true;
}

bool ServeClient::requestShutdown(std::string &Error) {
  std::string Payload;
  return roundTrip(FrameType::Shutdown, "", FrameType::ShutdownAck, Payload,
                   Error);
}

bool ServeClient::fetchFlightDump(std::string &DumpJsonl,
                                  std::string &Error) {
  return roundTrip(FrameType::Dump, "", FrameType::DumpReply, DumpJsonl,
                   Error);
}

} // namespace sxe
