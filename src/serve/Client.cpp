//===- serve/Client.cpp - Compile-serving client library ------------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "support/Json.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sxe {

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

static int connectOnce(const std::string &SocketPath, std::string &Error) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "invalid socket path '" + SocketPath + "'";
    return -1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = std::string("connect ") + SocketPath + ": " +
            std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool ServeClient::connectTo(const std::string &SocketPath, std::string &Error,
                            unsigned RetryMillis) {
  close();
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(RetryMillis);
  while (true) {
    Fd = connectOnce(SocketPath, Error);
    if (Fd >= 0)
      return true;
    if (RetryMillis == 0 || std::chrono::steady_clock::now() >= Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool ServeClient::roundTrip(FrameType Send, const std::string &Payload,
                            FrameType Expect, std::string &ReplyPayload,
                            std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return false;
  }
  if (!writeFrame(Fd, Send, Payload, Error))
    return false;
  FrameType Got;
  if (!readFrame(Fd, Got, ReplyPayload, Error))
    return false;
  if (Got != Expect) {
    Error = "unexpected reply frame type " +
            std::to_string(static_cast<unsigned>(Got));
    return false;
  }
  return true;
}

bool ServeClient::compile(const ServeRequest &Request, ServeReply &Reply,
                          std::string &Error) {
  std::string Payload;
  if (!roundTrip(FrameType::Compile, encodeServeRequest(Request),
                 FrameType::CompileReply, Payload, Error))
    return false;
  return decodeServeReply(Payload, Reply, Error);
}

bool ServeClient::ping(std::string &Error) {
  std::string Payload;
  return roundTrip(FrameType::Ping, "", FrameType::Pong, Payload, Error);
}

bool ServeClient::fetchMetrics(std::string &PrometheusText,
                               std::string &Error) {
  std::string Payload;
  if (!roundTrip(FrameType::MetricsQuery, "", FrameType::MetricsReply,
                 Payload, Error))
    return false;
  JsonValue Doc;
  if (!parseJson(Payload, Doc, Error))
    return false;
  PrometheusText = Doc.stringField("prometheus");
  return true;
}

bool ServeClient::requestShutdown(std::string &Error) {
  std::string Payload;
  return roundTrip(FrameType::Shutdown, "", FrameType::ShutdownAck, Payload,
                   Error);
}

} // namespace sxe
