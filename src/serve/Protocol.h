//===- serve/Protocol.h - Compile-serving wire protocol ----------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire vocabulary of the compile-serving daemon (serve/Daemon.h): a
/// small length-prefixed framed protocol over a unix-domain stream
/// socket. Every frame is
///
///     +------+------+----------+--------+-----------------+
///     | 'S'  | 'X'  | 'E' 'F'  | type   | reserved[3]     |  8 bytes
///     +------+------+----------+--------+-----------------+
///     | payload length, uint32 little-endian               |  4 bytes
///     +----------------------------------------------------+
///     | payload (JSON document, schema sxe.serve.v1)       |
///     +----------------------------------------------------+
///
/// Compile requests carry IR source + target + variant + deadline budget;
/// replies carry the artifact (optimized IR text, per-pass stats, remark
/// stream) or a *typed* error: `overload` (load shed at admission),
/// `deadline` (budget expired in queue), `shutdown` (daemon draining),
/// `parse`/`pipeline` (the compile itself failed), `protocol` (malformed
/// frame). Ping/Pong probe liveness, MetricsQuery returns the daemon's
/// Prometheus exposition, Shutdown asks for a graceful drain.
///
/// The payload length is bounded (kMaxFrameBytes) so a corrupt header
/// cannot make a peer allocate unbounded memory; readFrame() fails
/// cleanly on bad magic, unknown type, oversize, or truncation.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_SERVE_PROTOCOL_H
#define SXE_SERVE_PROTOCOL_H

#include "pm/PassStats.h"
#include "sxe/Pipeline.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sxe {

/// Schema tag of every frame payload.
inline constexpr const char *kServeSchema = "sxe.serve.v1";

/// Hard ceiling on one frame's payload (64 MiB).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : uint8_t {
  Compile = 1,
  CompileReply = 2,
  Ping = 3,
  Pong = 4,
  MetricsQuery = 5,
  MetricsReply = 6,
  Shutdown = 7,
  ShutdownAck = 8,
  /// Asks the daemon to dump its flight recorder (payload ignored);
  /// DumpReply carries the sxe.flight.v1 JSONL document verbatim.
  Dump = 9,
  DumpReply = 10,
};

/// Typed failure taxonomy of a compile reply.
enum class ServeErrorKind : uint8_t {
  None,     ///< Ok reply.
  Overload, ///< Load shed at admission (queue full or p99 over budget).
  Deadline, ///< Deadline budget expired while queued.
  Shutdown, ///< Daemon is draining; request refused.
  Parse,    ///< The submitted IR did not parse.
  Pipeline, ///< Verify-each caught a broken pass.
  Protocol, ///< Malformed request frame.
};

const char *serveErrorKindName(ServeErrorKind Kind);
bool serveErrorKindByName(const std::string &Name, ServeErrorKind &Out);

/// Which tier served an Ok reply.
enum class ServeTier : uint8_t {
  Compiled,   ///< The pipeline ran.
  Memory,     ///< In-memory CodeCache hit.
  Persistent, ///< On-disk PersistentCache hit.
};

const char *serveTierName(ServeTier Tier);
bool serveTierByName(const std::string &Name, ServeTier &Out);

/// One compile submission.
struct ServeRequest {
  std::string Name;   ///< Display label (file name, ...).
  std::string Source; ///< `.sxir` module text.
  std::string Target = "ia64";
  std::string Variant = "all"; ///< variantName() label or shorthand.
  double Hotness = 0.0;
  /// Relative deadline budget in milliseconds; 0 = the daemon's default.
  uint64_t DeadlineMillis = 0;
  bool CollectRemarks = false;
  /// False suppresses the optimized IR text in the reply (stats-only
  /// probes and benchmark loops keep frames small).
  bool WantIR = true;
  /// Client-minted distributed trace id (0 = untraced / legacy client;
  /// the daemon mints one so every request is still joinable). Carried
  /// on the wire as 16 lowercase hex digits under "trace_id".
  uint64_t TraceId = 0;
  /// Client-side request sequence number, echoed in events for
  /// debugging multi-request clients (0 = unset).
  uint64_t ClientRequestId = 0;
};

/// One compile reply.
struct ServeReply {
  bool Ok = false;
  ServeErrorKind ErrorKind = ServeErrorKind::None;
  std::string Error;
  ServeTier Tier = ServeTier::Compiled;
  std::string IRText;
  uint64_t InputIRHash = 0;
  /// Per-pass counters of the producing run (replayed on cache hits).
  std::vector<StatEntry> Stats;
  /// sxe.remarks.v1 JSONL stream (empty unless CollectRemarks).
  std::string RemarksJsonl;
  uint64_t QueueWaitNanos = 0;
  uint64_t WallNanos = 0;
  /// The trace id this request ran under (the client's, or the one the
  /// daemon minted for a legacy id-less request). 0 only from pre-trace
  /// daemons.
  uint64_t TraceId = 0;
  /// Daemon-assigned dense request sequence number (0 from pre-trace
  /// daemons or for requests refused before admission bookkeeping).
  uint64_t RequestId = 0;
};

//===----------------------------------------------------------------------===//
// Framing over a connected stream socket
//===----------------------------------------------------------------------===//

/// Writes one frame; loops over partial writes. False + \p Error on I/O
/// failure or oversize payload.
bool writeFrame(int Fd, FrameType Type, const std::string &Payload,
                std::string &Error);

/// Reads one frame; loops over partial reads. False + \p Error on EOF,
/// truncation, bad magic, unknown type, or oversize length. A clean EOF
/// before any header byte sets \p Error to "eof".
bool readFrame(int Fd, FrameType &Type, std::string &Payload,
               std::string &Error);

//===----------------------------------------------------------------------===//
// Payload encoding
//===----------------------------------------------------------------------===//

std::string encodeServeRequest(const ServeRequest &Request);
bool decodeServeRequest(const std::string &Payload, ServeRequest &Out,
                        std::string &Error);

std::string encodeServeReply(const ServeReply &Reply);
bool decodeServeReply(const std::string &Payload, ServeReply &Out,
                      std::string &Error);

//===----------------------------------------------------------------------===//
// Name resolution shared by the daemon and the client tools
//===----------------------------------------------------------------------===//

/// Target by name ("ia64", "ppc64", "generic64", "x86_64"); null when
/// unknown.
const TargetInfo *serveTargetByName(const std::string &Name);

/// Variant by paper row label or shorthand ("all", "baseline", "first",
/// "basic", "array").
bool serveVariantByName(const std::string &Name, Variant &Out);

} // namespace sxe

#endif // SXE_SERVE_PROTOCOL_H
