//===- serve/Protocol.cpp - Compile-serving wire protocol -----------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "support/Json.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

namespace sxe {

static const char kMagic[4] = {'S', 'X', 'E', 'F'};

const char *serveErrorKindName(ServeErrorKind Kind) {
  switch (Kind) {
  case ServeErrorKind::None:
    return "none";
  case ServeErrorKind::Overload:
    return "overload";
  case ServeErrorKind::Deadline:
    return "deadline";
  case ServeErrorKind::Shutdown:
    return "shutdown";
  case ServeErrorKind::Parse:
    return "parse";
  case ServeErrorKind::Pipeline:
    return "pipeline";
  case ServeErrorKind::Protocol:
    return "protocol";
  }
  return "none";
}

bool serveErrorKindByName(const std::string &Name, ServeErrorKind &Out) {
  static const ServeErrorKind All[] = {
      ServeErrorKind::None,     ServeErrorKind::Overload,
      ServeErrorKind::Deadline, ServeErrorKind::Shutdown,
      ServeErrorKind::Parse,    ServeErrorKind::Pipeline,
      ServeErrorKind::Protocol,
  };
  for (ServeErrorKind Kind : All)
    if (Name == serveErrorKindName(Kind)) {
      Out = Kind;
      return true;
    }
  return false;
}

const char *serveTierName(ServeTier Tier) {
  switch (Tier) {
  case ServeTier::Compiled:
    return "compiled";
  case ServeTier::Memory:
    return "memory";
  case ServeTier::Persistent:
    return "persistent";
  }
  return "compiled";
}

bool serveTierByName(const std::string &Name, ServeTier &Out) {
  static const ServeTier All[] = {ServeTier::Compiled, ServeTier::Memory,
                                  ServeTier::Persistent};
  for (ServeTier Tier : All)
    if (Name == serveTierName(Tier)) {
      Out = Tier;
      return true;
    }
  return false;
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

static bool validFrameType(uint8_t Raw) {
  return Raw >= static_cast<uint8_t>(FrameType::Compile) &&
         Raw <= static_cast<uint8_t>(FrameType::DumpReply);
}

static bool writeAll(int Fd, const char *Data, size_t Len,
                     std::string &Error) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::write(Fd, Data + Done, Len - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

/// Reads exactly \p Len bytes. AtStart distinguishes "clean EOF between
/// frames" (reported as "eof") from "truncated frame".
static bool readAll(int Fd, char *Data, size_t Len, bool AtStart,
                    std::string &Error) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::read(Fd, Data + Done, Len - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("read: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Error = (AtStart && Done == 0) ? "eof" : "truncated frame";
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

bool writeFrame(int Fd, FrameType Type, const std::string &Payload,
                std::string &Error) {
  if (Payload.size() > kMaxFrameBytes) {
    Error = "frame payload exceeds 64 MiB limit";
    return false;
  }
  char Header[12];
  std::memcpy(Header, kMagic, 4);
  Header[4] = static_cast<char>(Type);
  Header[5] = Header[6] = Header[7] = 0;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  Header[8] = static_cast<char>(Len & 0xFF);
  Header[9] = static_cast<char>((Len >> 8) & 0xFF);
  Header[10] = static_cast<char>((Len >> 16) & 0xFF);
  Header[11] = static_cast<char>((Len >> 24) & 0xFF);
  if (!writeAll(Fd, Header, sizeof(Header), Error))
    return false;
  return Payload.empty() || writeAll(Fd, Payload.data(), Payload.size(), Error);
}

bool readFrame(int Fd, FrameType &Type, std::string &Payload,
               std::string &Error) {
  char Header[12];
  if (!readAll(Fd, Header, sizeof(Header), /*AtStart=*/true, Error))
    return false;
  if (std::memcmp(Header, kMagic, 4) != 0) {
    Error = "bad frame magic";
    return false;
  }
  uint8_t RawType = static_cast<uint8_t>(Header[4]);
  if (!validFrameType(RawType)) {
    Error = "unknown frame type " + std::to_string(RawType);
    return false;
  }
  uint32_t Len = static_cast<uint32_t>(static_cast<uint8_t>(Header[8])) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Header[9])) << 8) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Header[10]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(Header[11]))
                  << 24);
  if (Len > kMaxFrameBytes) {
    Error = "frame payload length " + std::to_string(Len) +
            " exceeds 64 MiB limit";
    return false;
  }
  Type = static_cast<FrameType>(RawType);
  Payload.assign(Len, '\0');
  if (Len == 0)
    return true;
  return readAll(Fd, &Payload[0], Len, /*AtStart=*/false, Error);
}

//===----------------------------------------------------------------------===//
// Payload encoding
//===----------------------------------------------------------------------===//

static std::string hex16(uint64_t Value) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Value));
  return Buf;
}

/// Optional trace id: absent or malformed decodes as 0 so pre-trace
/// peers interoperate.
static uint64_t traceIdField(const JsonValue &Doc, const char *Name) {
  const JsonValue *Field = Doc.find(Name);
  if (!Field || !Field->isString())
    return 0;
  return std::strtoull(Field->stringValue().c_str(), nullptr, 16);
}

std::string encodeServeRequest(const ServeRequest &Request) {
  JsonWriter J;
  J.beginObject();
  J.keyValue("schema", kServeSchema);
  J.keyValue("name", Request.Name);
  J.keyValue("source", Request.Source);
  J.keyValue("target", Request.Target);
  J.keyValue("variant", Request.Variant);
  if (Request.Hotness != 0.0)
    J.keyValue("hotness", Request.Hotness);
  if (Request.DeadlineMillis)
    J.keyValue("deadline_ms", Request.DeadlineMillis);
  if (Request.CollectRemarks)
    J.keyValue("collect_remarks", true);
  if (!Request.WantIR)
    J.keyValue("want_ir", false);
  if (Request.TraceId)
    J.keyValue("trace_id", hex16(Request.TraceId));
  if (Request.ClientRequestId)
    J.keyValue("client_request_id", Request.ClientRequestId);
  J.endObject();
  return J.str();
}

static uint64_t numberField(const JsonValue &Doc, const char *Name) {
  const JsonValue *Field = Doc.find(Name);
  if (!Field || !Field->isNumber())
    return 0;
  double Value = Field->numberValue();
  return Value > 0 ? static_cast<uint64_t>(Value) : 0;
}

static bool boolField(const JsonValue &Doc, const char *Name, bool Default) {
  const JsonValue *Field = Doc.find(Name);
  if (!Field || !Field->isBool())
    return Default;
  return Field->boolValue();
}

static bool checkSchema(const JsonValue &Doc, std::string &Error) {
  if (!Doc.isObject()) {
    Error = "payload is not a JSON object";
    return false;
  }
  std::string Schema = Doc.stringField("schema");
  if (Schema != kServeSchema) {
    Error = "unexpected payload schema '" + Schema + "'";
    return false;
  }
  return true;
}

bool decodeServeRequest(const std::string &Payload, ServeRequest &Out,
                        std::string &Error) {
  JsonValue Doc;
  if (!parseJson(Payload, Doc, Error))
    return false;
  if (!checkSchema(Doc, Error))
    return false;
  const JsonValue *Source = Doc.find("source");
  if (!Source || !Source->isString()) {
    Error = "request is missing string field 'source'";
    return false;
  }
  Out = ServeRequest();
  Out.Name = Doc.stringField("name");
  Out.Source = Source->stringValue();
  if (const JsonValue *Target = Doc.find("target"))
    if (Target->isString())
      Out.Target = Target->stringValue();
  if (const JsonValue *Variant = Doc.find("variant"))
    if (Variant->isString())
      Out.Variant = Variant->stringValue();
  if (const JsonValue *Hotness = Doc.find("hotness"))
    if (Hotness->isNumber())
      Out.Hotness = Hotness->numberValue();
  Out.DeadlineMillis = numberField(Doc, "deadline_ms");
  Out.CollectRemarks = boolField(Doc, "collect_remarks", false);
  Out.WantIR = boolField(Doc, "want_ir", true);
  Out.TraceId = traceIdField(Doc, "trace_id");
  Out.ClientRequestId = numberField(Doc, "client_request_id");
  return true;
}

std::string encodeServeReply(const ServeReply &Reply) {
  JsonWriter J;
  J.beginObject();
  J.keyValue("schema", kServeSchema);
  J.keyValue("ok", Reply.Ok);
  if (!Reply.Ok) {
    J.keyValue("error_kind", serveErrorKindName(Reply.ErrorKind));
    J.keyValue("error", Reply.Error);
  }
  if (Reply.Ok) {
    J.keyValue("tier", serveTierName(Reply.Tier));
    J.keyValue("ir_hash", hex16(Reply.InputIRHash));
    if (!Reply.IRText.empty())
      J.keyValue("ir", Reply.IRText);
    if (!Reply.Stats.empty()) {
      J.key("stats");
      J.beginArray();
      for (const StatEntry &Entry : Reply.Stats) {
        J.beginObject();
        J.keyValue("pass", Entry.Pass);
        J.keyValue("name", Entry.Name);
        J.keyValue("value", Entry.Value);
        if (Entry.IsFlag)
          J.keyValue("flag", true);
        J.endObject();
      }
      J.endArray();
    }
    if (!Reply.RemarksJsonl.empty())
      J.keyValue("remarks_jsonl", Reply.RemarksJsonl);
  }
  if (Reply.QueueWaitNanos)
    J.keyValue("queue_wait_ns", Reply.QueueWaitNanos);
  if (Reply.WallNanos)
    J.keyValue("wall_ns", Reply.WallNanos);
  if (Reply.TraceId)
    J.keyValue("trace_id", hex16(Reply.TraceId));
  if (Reply.RequestId)
    J.keyValue("request_id", Reply.RequestId);
  J.endObject();
  return J.str();
}

bool decodeServeReply(const std::string &Payload, ServeReply &Out,
                      std::string &Error) {
  JsonValue Doc;
  if (!parseJson(Payload, Doc, Error))
    return false;
  if (!checkSchema(Doc, Error))
    return false;
  Out = ServeReply();
  Out.Ok = boolField(Doc, "ok", false);
  if (!Out.Ok) {
    if (!serveErrorKindByName(Doc.stringField("error_kind"), Out.ErrorKind))
      Out.ErrorKind = ServeErrorKind::Protocol;
    Out.Error = Doc.stringField("error");
  } else {
    if (!serveTierByName(Doc.stringField("tier"), Out.Tier))
      Out.Tier = ServeTier::Compiled;
    Out.InputIRHash =
        std::strtoull(Doc.stringField("ir_hash").c_str(), nullptr, 16);
    Out.IRText = Doc.stringField("ir");
    Out.RemarksJsonl = Doc.stringField("remarks_jsonl");
    if (const JsonValue *Stats = Doc.find("stats")) {
      if (!Stats->isArray()) {
        Error = "reply field 'stats' is not an array";
        return false;
      }
      for (const JsonValue &Item : Stats->array()) {
        if (!Item.isObject()) {
          Error = "reply stats entry is not an object";
          return false;
        }
        StatEntry Entry;
        Entry.Pass = Item.stringField("pass");
        Entry.Name = Item.stringField("name");
        Entry.Value = numberField(Item, "value");
        Entry.IsFlag = boolField(Item, "flag", false);
        Out.Stats.push_back(std::move(Entry));
      }
    }
  }
  Out.QueueWaitNanos = numberField(Doc, "queue_wait_ns");
  Out.WallNanos = numberField(Doc, "wall_ns");
  Out.TraceId = traceIdField(Doc, "trace_id");
  Out.RequestId = numberField(Doc, "request_id");
  return true;
}

//===----------------------------------------------------------------------===//
// Name resolution
//===----------------------------------------------------------------------===//

const TargetInfo *serveTargetByName(const std::string &Name) {
  if (Name == "ia64")
    return &TargetInfo::ia64();
  if (Name == "ppc64")
    return &TargetInfo::ppc64();
  if (Name == "generic64")
    return &TargetInfo::generic64();
  if (Name == "x86_64")
    return &TargetInfo::x86_64();
  return nullptr;
}

bool serveVariantByName(const std::string &Name, Variant &Out) {
  for (Variant V : AllVariants) {
    if (Name == variantName(V)) {
      Out = V;
      return true;
    }
  }
  // Convenient shorthands matching sxetool's CLI.
  if (Name == "all") {
    Out = Variant::All;
    return true;
  }
  if (Name == "baseline") {
    Out = Variant::Baseline;
    return true;
  }
  if (Name == "first") {
    Out = Variant::FirstAlgorithm;
    return true;
  }
  if (Name == "basic") {
    Out = Variant::BasicUdDu;
    return true;
  }
  if (Name == "array") {
    Out = Variant::Array;
    return true;
  }
  return false;
}

} // namespace sxe
