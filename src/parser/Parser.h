//===- parser/Parser.h - Parser for textual IR --------------------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the `.sxir` textual format, the inverse of
/// ir/IRPrinter.h: parse(printModule(M)) reconstructs M up to register and
/// block identity. Tools load sample programs through this; tests
/// round-trip every workload.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_PARSER_PARSER_H
#define SXE_PARSER_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace sxe {

/// Outcome of a parse: a module, or an error message with line context.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::string Error;

  bool ok() const { return M != nullptr; }
};

/// Parses a whole module from \p Source.
ParseResult parseModule(const std::string &Source);

} // namespace sxe

#endif // SXE_PARSER_PARSER_H
