//===- parser/Parser.cpp - Parser for textual IR ------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <unordered_map>

using namespace sxe;

namespace {

/// Renders token text for a diagnostic: escapes non-printable bytes and
/// truncates pathologically long tokens. Fuzz input routinely lands
/// control bytes inside string tokens; echoing them raw corrupts the
/// error message.
std::string quoted(const std::string &Text) {
  const size_t MaxShown = 32;
  std::string Out;
  for (size_t Index = 0; Index < Text.size() && Index < MaxShown; ++Index) {
    unsigned char U = static_cast<unsigned char>(Text[Index]);
    if (std::isprint(U)) {
      Out += Text[Index];
    } else {
      char Buffer[8];
      std::snprintf(Buffer, sizeof(Buffer), "\\x%02X", U);
      Out += Buffer;
    }
  }
  if (Text.size() > MaxShown)
    Out += "...";
  return Out;
}

std::optional<Type> typeByName(const std::string &Name) {
  if (Name == "void")
    return Type::Void;
  if (Name == "i8")
    return Type::I8;
  if (Name == "i16")
    return Type::I16;
  if (Name == "u16")
    return Type::U16;
  if (Name == "i32")
    return Type::I32;
  if (Name == "i64")
    return Type::I64;
  if (Name == "f64")
    return Type::F64;
  if (Name == "arrayref")
    return Type::ArrayRef;
  return std::nullopt;
}

std::optional<CmpPred> predByName(const std::string &Name) {
  static const std::pair<const char *, CmpPred> Table[] = {
      {"eq", CmpPred::EQ},   {"ne", CmpPred::NE},   {"slt", CmpPred::SLT},
      {"sle", CmpPred::SLE}, {"sgt", CmpPred::SGT}, {"sge", CmpPred::SGE},
      {"ult", CmpPred::ULT}, {"ule", CmpPred::ULE}, {"ugt", CmpPred::UGT},
      {"uge", CmpPred::UGE},
  };
  for (const auto &[Text, Pred] : Table)
    if (Name == Text)
      return Pred;
  return std::nullopt;
}

/// Splits "add.w32" into ("add", "w32"); no dot yields ("add", "").
std::pair<std::string, std::string> splitMnemonic(const std::string &Text) {
  size_t Dot = Text.find('.');
  if (Dot == std::string::npos)
    return {Text, ""};
  return {Text.substr(0, Dot), Text.substr(Dot + 1)};
}

std::optional<Opcode> opcodeByMnemonic(const std::string &Name) {
  for (unsigned Index = 0; Index < NumOpcodes; ++Index) {
    Opcode Op = static_cast<Opcode>(Index);
    if (Name == opcodeMnemonic(Op))
      return Op;
  }
  // Printer prints ConstInt as "const" and ConstF64 as "fconst"; those are
  // the stored mnemonics already. Nothing special to do.
  return std::nullopt;
}

class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  ParseResult run();

private:
  const Token &peek() const { return Tokens[Pos]; }
  Token next() {
    // Never advance past the End sentinel: truncated input leaves callers
    // peeking End forever and failing with a diagnostic, not reading past
    // the token array.
    Token T = Tokens[Pos];
    if (T.Kind != TokenKind::End)
      ++Pos;
    return T;
  }
  bool atEnd() const { return peek().Kind == TokenKind::End; }

  [[nodiscard]] bool fail(const std::string &Message) {
    if (Error.empty())
      Error = "line " + std::to_string(peek().Line) + ": " + Message;
    return false;
  }

  bool expect(TokenKind Kind, const char *What) {
    if (peek().Kind != Kind)
      return fail(std::string("expected ") + What + ", found '" +
                  quoted(peek().Text) + "'");
    next();
    return true;
  }

  bool expectIdent(const std::string &Word) {
    if (peek().Kind != TokenKind::Identifier || peek().Text != Word)
      return fail("expected '" + Word + "', found '" + quoted(peek().Text) +
                  "'");
    next();
    return true;
  }

  bool parseType(Type &Ty) {
    if (peek().Kind != TokenKind::Identifier)
      return fail("expected a type name");
    auto Parsed = typeByName(peek().Text);
    if (!Parsed)
      return fail("unknown type '" + quoted(peek().Text) + "'");
    Ty = *Parsed;
    next();
    return true;
  }

  bool parseFunction(Module &M);
  bool parseInstruction(Function &F);

  Reg lookupReg(const std::string &Name, bool &Ok) {
    auto It = RegByName.find(Name);
    if (It == RegByName.end()) {
      Ok = fail("unknown register '%" + Name + "'");
      return NoReg;
    }
    Ok = true;
    return It->second;
  }

  bool parseRegOperand(Reg &R) {
    if (peek().Kind != TokenKind::RegName)
      return fail("expected a register operand");
    bool Ok = false;
    R = lookupReg(peek().Text, Ok);
    if (!Ok)
      return false;
    next();
    return true;
  }

  BasicBlock *blockByName(Function &F, const std::string &Name) {
    auto It = BlockByName.find(Name);
    if (It != BlockByName.end())
      return It->second;
    BasicBlock *BB = F.createBlock(Name);
    BlockByName[Name] = BB;
    return BB;
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::string Error;

  std::unordered_map<std::string, Reg> RegByName;
  std::unordered_map<std::string, BasicBlock *> BlockByName;
  BasicBlock *CurrentBlock = nullptr;
  /// Call sites to resolve once all functions exist.
  std::vector<std::pair<Instruction *, std::string>> CallFixups;
  /// Callee name of the call currently being parsed; the fixup records
  /// the instruction pointer the block admission returns.
  std::string PendingCallee;
};

bool Parser::parseFunction(Module &M) {
  if (!expectIdent("func"))
    return false;
  if (peek().Kind != TokenKind::GlobalName)
    return fail("expected '@name' after 'func'");
  std::string Name = next().Text;
  if (M.findFunction(Name))
    return fail("duplicate function '@" + Name + "'");

  if (!expect(TokenKind::LParen, "'('"))
    return false;

  struct Param {
    std::string Name;
    Type Ty;
  };
  std::vector<Param> Params;
  if (peek().Kind != TokenKind::RParen) {
    while (true) {
      if (peek().Kind != TokenKind::RegName)
        return fail("expected a parameter name");
      std::string PName = next().Text;
      if (!expect(TokenKind::Colon, "':'"))
        return false;
      Type Ty;
      if (!parseType(Ty))
        return false;
      Params.push_back({PName, Ty});
      if (peek().Kind == TokenKind::Comma) {
        next();
        continue;
      }
      break;
    }
  }
  if (!expect(TokenKind::RParen, "')'"))
    return false;
  if (!expect(TokenKind::Arrow, "'->'"))
    return false;
  Type RetTy;
  if (!parseType(RetTy))
    return false;
  if (!expect(TokenKind::LBrace, "'{'"))
    return false;

  Function *F = M.createFunction(Name, RetTy);
  RegByName.clear();
  BlockByName.clear();
  for (const Param &P : Params) {
    if (RegByName.count(P.Name))
      return fail("duplicate register '%" + P.Name + "'");
    RegByName[P.Name] = F->addParam(P.Ty, P.Name);
  }

  // Register declarations.
  while (peek().Kind == TokenKind::Identifier && peek().Text == "reg") {
    next();
    if (peek().Kind != TokenKind::RegName)
      return fail("expected a register name after 'reg'");
    std::string RName = next().Text;
    if (!expect(TokenKind::Colon, "':'"))
      return false;
    Type Ty;
    if (!parseType(Ty))
      return false;
    if (RegByName.count(RName))
      return fail("duplicate register '%" + RName + "'");
    RegByName[RName] = F->newReg(Ty, RName);
  }

  // Pre-scan the body for labels so blocks are created in textual order
  // (a forward branch reference must not reorder the layout; the printer
  // emits layout order, and print -> parse -> print must be a fixpoint).
  // In the body grammar, "identifier ':'" occurs only as a label (reg and
  // parameter declarations put the colon after a %name).
  for (size_t Ahead = Pos; Ahead + 1 < Tokens.size() &&
                           Tokens[Ahead].Kind != TokenKind::RBrace;
       ++Ahead) {
    if (Tokens[Ahead].Kind == TokenKind::Identifier &&
        Tokens[Ahead + 1].Kind == TokenKind::Colon)
      blockByName(*F, Tokens[Ahead].Text);
  }

  // Blocks: label ':' then instructions until the next label or '}'.
  BasicBlock *Current = nullptr;
  while (peek().Kind != TokenKind::RBrace) {
    if (atEnd())
      return fail("unexpected end of input inside a function");
    if (peek().Kind == TokenKind::Identifier &&
        Pos + 1 < Tokens.size() &&
        Tokens[Pos + 1].Kind == TokenKind::Colon) {
      std::string Label = next().Text;
      next(); // ':'
      Current = blockByName(*F, Label);
      if (!Current->empty())
        return fail("block '" + Label + "' defined twice");
      CurrentBlock = Current;
      continue;
    }
    if (!Current)
      return fail("instruction before the first block label");
    CurrentBlock = Current;
    if (!parseInstruction(*F))
      return false;
  }
  next(); // '}'

  // Every referenced block must have been defined.
  for (const auto &[BName, BB] : BlockByName)
    if (BB->empty())
      return fail("block '" + BName + "' referenced but never defined");
  return true;
}

bool Parser::parseInstruction(Function &F) {
  // Optional "%dest =".
  Reg Dest = NoReg;
  if (peek().Kind == TokenKind::RegName &&
      Pos + 1 < Tokens.size() &&
      Tokens[Pos + 1].Kind == TokenKind::Equals) {
    bool Ok = false;
    Dest = lookupReg(next().Text, Ok);
    if (!Ok)
      return false;
    next(); // '='
  }

  if (peek().Kind != TokenKind::Identifier)
    return fail("expected an instruction mnemonic");
  auto [Base, Suffix] = splitMnemonic(next().Text);

  auto Op = opcodeByMnemonic(Base);
  if (!Op)
    return fail("unknown mnemonic '" + quoted(Base) + "'");

  auto Inst = std::make_unique<Instruction>(*Op);
  Inst->setDest(Dest);
  const OpcodeInfo &Info = opcodeInfo(*Op);

  if (Info.HasWidth) {
    if (Suffix == "w32")
      Inst->setWidth(Width::W32);
    else if (Suffix == "w64")
      Inst->setWidth(Width::W64);
    else
      return fail("expected .w32/.w64 width suffix on '" + Base + "'");
  } else if (Info.HasElemType || *Op == Opcode::ConstInt) {
    auto Ty = typeByName(Suffix);
    if (!Ty)
      return fail("expected a type suffix on '" + Base + "'");
    Inst->setType(*Ty);
  } else if (!Suffix.empty()) {
    return fail("unexpected suffix on '" + Base + "'");
  }

  auto parseOperandList = [&](unsigned Count) {
    for (unsigned Index = 0; Index < Count; ++Index) {
      if (Index != 0 && !expect(TokenKind::Comma, "','"))
        return false;
      Reg R;
      if (!parseRegOperand(R))
        return false;
      Inst->addOperand(R);
    }
    return true;
  };

  switch (*Op) {
  case Opcode::ConstInt: {
    if (peek().Kind != TokenKind::Number)
      return fail("expected an integer literal");
    const std::string &Text = peek().Text;
    errno = 0;
    char *End = nullptr;
    long long Value = std::strtoll(Text.c_str(), &End, 0);
    if (End != Text.c_str() + Text.size() || End == Text.c_str())
      return fail("malformed integer literal '" + quoted(Text) + "'");
    if (errno == ERANGE)
      return fail("integer literal out of range '" + quoted(Text) + "'");
    Inst->setIntValue(Value);
    next();
    break;
  }
  case Opcode::ConstF64: {
    if (peek().Kind != TokenKind::Number)
      return fail("expected a float literal");
    const std::string &Text = peek().Text;
    errno = 0;
    char *End = nullptr;
    double Value = std::strtod(Text.c_str(), &End);
    if (End != Text.c_str() + Text.size() || End == Text.c_str())
      return fail("malformed float literal '" + quoted(Text) + "'");
    // ERANGE overflow saturates to +-HUGE_VAL; reject it. ERANGE underflow
    // (subnormals rounding toward zero) keeps the nearest representable
    // value and is accepted.
    if (errno == ERANGE && (Value == HUGE_VAL || Value == -HUGE_VAL))
      return fail("float literal out of range '" + quoted(Text) + "'");
    Inst->setFloatValue(Value);
    next();
    break;
  }
  case Opcode::Cmp:
  case Opcode::FCmp: {
    if (peek().Kind != TokenKind::Identifier)
      return fail("expected a comparison predicate");
    auto Pred = predByName(next().Text);
    if (!Pred)
      return fail("unknown comparison predicate");
    Inst->setPred(*Pred);
    if (!parseOperandList(2))
      return false;
    break;
  }
  case Opcode::Br: {
    Reg Cond;
    if (!parseRegOperand(Cond))
      return false;
    Inst->addOperand(Cond);
    for (unsigned Index = 0; Index < 2; ++Index) {
      if (!expect(TokenKind::Comma, "','"))
        return false;
      if (peek().Kind != TokenKind::Identifier)
        return fail("expected a block label");
      Inst->setSuccessor(Index, blockByName(F, next().Text));
    }
    break;
  }
  case Opcode::Jmp: {
    if (peek().Kind != TokenKind::Identifier)
      return fail("expected a block label");
    Inst->setSuccessor(0, blockByName(F, next().Text));
    break;
  }
  case Opcode::Ret: {
    if (peek().Kind == TokenKind::RegName) {
      Reg R;
      if (!parseRegOperand(R))
        return false;
      Inst->addOperand(R);
    }
    break;
  }
  case Opcode::Call: {
    if (peek().Kind != TokenKind::GlobalName)
      return fail("expected '@callee'");
    std::string Callee = next().Text;
    if (!expect(TokenKind::LParen, "'('"))
      return false;
    if (peek().Kind != TokenKind::RParen) {
      while (true) {
        Reg R;
        if (!parseRegOperand(R))
          return false;
        Inst->addOperand(R);
        if (peek().Kind == TokenKind::Comma) {
          next();
          continue;
        }
        break;
      }
    }
    if (!expect(TokenKind::RParen, "')'"))
      return false;
    PendingCallee = Callee;
    break;
  }
  default: {
    unsigned Count = Info.NumOperands >= 0
                         ? static_cast<unsigned>(Info.NumOperands)
                         : 0;
    if (!parseOperandList(Count))
      return false;
    break;
  }
  }

  Instruction *Placed = CurrentBlock->append(std::move(Inst));
  if (*Op == Opcode::Call) {
    CallFixups.push_back({Placed, PendingCallee});
    PendingCallee.clear();
  }
  return true;
}

ParseResult Parser::run() {
  ParseResult Result;
  auto M = std::make_unique<Module>("module");

  if (peek().Kind == TokenKind::Identifier && peek().Text == "module") {
    next();
    if (peek().Kind != TokenKind::String) {
      (void)fail("expected a string after 'module'");
      Result.Error = Error;
      return Result;
    }
    M = std::make_unique<Module>(next().Text);
  }

  while (!atEnd()) {
    if (!parseFunction(*M)) {
      Result.Error = Error;
      return Result;
    }
  }

  for (const auto &[Call, Callee] : CallFixups) {
    Function *Target = M->findFunction(Callee);
    if (!Target) {
      Result.Error = "call to undefined function '@" + Callee + "'";
      return Result;
    }
    Call->setCallee(Target);
  }

  Result.M = std::move(M);
  return Result;
}

} // namespace

ParseResult sxe::parseModule(const std::string &Source) {
  ParseResult Result;
  std::vector<Token> Tokens;
  if (!tokenize(Source, Tokens, Result.Error))
    return Result;
  Parser P(std::move(Tokens));
  return P.run();
}
