//===- parser/Lexer.cpp - Tokenizer for textual IR ---------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <cstdio>

using namespace sxe;

namespace {

/// Renders \p C for a diagnostic: the character itself when printable, a
/// "\xNN" escape otherwise (fuzz input routinely lands control bytes and
/// high-bit bytes here; echoing them raw corrupts the error message).
std::string printableChar(char C) {
  unsigned char U = static_cast<unsigned char>(C);
  if (std::isprint(U))
    return std::string(1, C);
  char Buffer[8];
  std::snprintf(Buffer, sizeof(Buffer), "\\x%02X", U);
  return Buffer;
}

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '.' || C == '$';
}

bool isNumberChar(char C) {
  // Covers decimal/hex integers and hex floats (0x1.8p+3), and negatives.
  return std::isalnum(static_cast<unsigned char>(C)) || C == '.' ||
         C == '+' || C == '-' || C == 'x' || C == 'X';
}

} // namespace

bool sxe::tokenize(const std::string &Source, std::vector<Token> &Tokens,
                   std::string &Error) {
  unsigned Line = 1;
  size_t Pos = 0;
  const size_t Len = Source.size();

  auto push = [&](TokenKind Kind, std::string Text) {
    Tokens.push_back(Token{Kind, std::move(Text), Line});
  };

  while (Pos < Len) {
    char C = Source[Pos];
    if (C == '\n') {
      ++Line;
      ++Pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == ';' || (C == '/' && Pos + 1 < Len && Source[Pos + 1] == '/')) {
      while (Pos < Len && Source[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C == '%' || C == '@') {
      TokenKind Kind = C == '%' ? TokenKind::RegName : TokenKind::GlobalName;
      size_t Start = ++Pos;
      while (Pos < Len && isIdentChar(Source[Pos]))
        ++Pos;
      if (Pos == Start) {
        Error = "line " + std::to_string(Line) + ": empty name after '" +
                printableChar(C) + "'";
        return false;
      }
      push(Kind, Source.substr(Start, Pos - Start));
      continue;
    }
    if (C == '"') {
      size_t Start = ++Pos;
      while (Pos < Len && Source[Pos] != '"' && Source[Pos] != '\n')
        ++Pos;
      if (Pos >= Len || Source[Pos] != '"') {
        Error = "line " + std::to_string(Line) + ": unterminated string";
        return false;
      }
      push(TokenKind::String, Source.substr(Start, Pos - Start));
      ++Pos;
      continue;
    }
    if (isIdentStart(C)) {
      size_t Start = Pos;
      while (Pos < Len && isIdentChar(Source[Pos]))
        ++Pos;
      push(TokenKind::Identifier, Source.substr(Start, Pos - Start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && Pos + 1 < Len &&
         std::isdigit(static_cast<unsigned char>(Source[Pos + 1])))) {
      size_t Start = Pos;
      ++Pos; // Consume the sign or first digit.
      while (Pos < Len && isNumberChar(Source[Pos])) {
        // '+'/'-' only continue a number directly after an exponent char.
        if ((Source[Pos] == '+' || Source[Pos] == '-') &&
            !(Source[Pos - 1] == 'p' || Source[Pos - 1] == 'P' ||
              Source[Pos - 1] == 'e' || Source[Pos - 1] == 'E'))
          break;
        ++Pos;
      }
      push(TokenKind::Number, Source.substr(Start, Pos - Start));
      continue;
    }
    switch (C) {
    case ':':
      push(TokenKind::Colon, ":");
      ++Pos;
      continue;
    case ',':
      push(TokenKind::Comma, ",");
      ++Pos;
      continue;
    case '=':
      push(TokenKind::Equals, "=");
      ++Pos;
      continue;
    case '(':
      push(TokenKind::LParen, "(");
      ++Pos;
      continue;
    case ')':
      push(TokenKind::RParen, ")");
      ++Pos;
      continue;
    case '{':
      push(TokenKind::LBrace, "{");
      ++Pos;
      continue;
    case '}':
      push(TokenKind::RBrace, "}");
      ++Pos;
      continue;
    case '-':
      if (Pos + 1 < Len && Source[Pos + 1] == '>') {
        push(TokenKind::Arrow, "->");
        Pos += 2;
        continue;
      }
      break;
    default:
      break;
    }
    Error = "line " + std::to_string(Line) + ": unexpected character '" +
            printableChar(C) + "'";
    return false;
  }
  push(TokenKind::End, "");
  return true;
}
