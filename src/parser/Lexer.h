//===- parser/Lexer.h - Tokenizer for textual IR ------------------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the `.sxir` textual format emitted by ir/IRPrinter.h.
/// Comments run from ';' or "//" to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef SXE_PARSER_LEXER_H
#define SXE_PARSER_LEXER_H

#include <string>
#include <vector>

namespace sxe {

/// Kind of one token.
enum class TokenKind : uint8_t {
  End,
  Identifier, ///< keywords, mnemonics, labels (may contain '.')
  RegName,    ///< %name
  GlobalName, ///< @name
  Number,     ///< integer or float literal (raw text kept)
  String,     ///< "..."
  Colon,
  Comma,
  Equals,
  Arrow, ///< ->
  LParen,
  RParen,
  LBrace,
  RBrace,
};

/// One token with its source location.
struct Token {
  TokenKind Kind = TokenKind::End;
  std::string Text; ///< Payload without sigils/quotes.
  unsigned Line = 0;
};

/// Tokenizes \p Source. On a lexical error, returns false and sets
/// \p Error (tokens may be partially filled).
bool tokenize(const std::string &Source, std::vector<Token> &Tokens,
              std::string &Error);

} // namespace sxe

#endif // SXE_PARSER_LEXER_H
