//===- tests/simplifycfg_test.cpp - CFG cleanup tests ------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "opt/SimplifyCFG.h"
#include "tests/TestHelpers.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace sxe;
using namespace sxe::test;

namespace {

TEST(SimplifyCFGTest, ThreadsTrivialJumpChain) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  BasicBlock *Hop1 = F->createBlock("hop1");
  BasicBlock *Hop2 = F->createBlock("hop2");
  BasicBlock *End = F->createBlock("end");
  B.jmp(Hop1);
  B.setBlock(Hop1);
  B.jmp(Hop2);
  B.setBlock(Hop2);
  B.jmp(End);
  B.setBlock(End);
  B.ret(P);

  unsigned Removed = runSimplifyCFG(*F);
  EXPECT_GE(Removed, 2u);
  // Everything collapses into the entry block.
  EXPECT_EQ(F->numBlocks(), 1u);
  ASSERT_TRUE(moduleVerifies(*M));
}

TEST(SimplifyCFGTest, MergesSinglePredecessorSuccessor) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg One = B.constI32(1);
  BasicBlock *Tail = F->createBlock("tail");
  B.jmp(Tail);
  B.setBlock(Tail);
  Reg Sum = B.add32(P, One, "sum");
  B.ret(Sum);

  uint32_t SumId = 0;
  for (Instruction &I : *Tail)
    if (I.opcode() == Opcode::Add)
      SumId = I.id();

  runSimplifyCFG(*F);
  EXPECT_EQ(F->numBlocks(), 1u);
  // Instruction ids survive the merge (profile keys).
  bool Found = false;
  for (Instruction &I : *F->entryBlock())
    if (I.opcode() == Opcode::Add) {
      EXPECT_EQ(I.id(), SumId);
      Found = true;
    }
  EXPECT_TRUE(Found);
  ASSERT_TRUE(moduleVerifies(*M));
}

TEST(SimplifyCFGTest, KeepsLoopStructure) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg N = F->addParam(Type::I32, "n");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg I = F->newReg(Type::I32, "i");
  B.copyTo(I, Zero);
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Head);
  B.setBlock(Head);
  Reg C = B.cmp32(CmpPred::SLT, I, N);
  B.br(C, Body, Exit);
  B.setBlock(Body);
  Reg One = B.constI32(1);
  B.binopTo(I, Opcode::Add, Width::W32, I, One);
  B.jmp(Head);
  B.setBlock(Exit);
  B.ret(I);

  runSimplifyCFG(*F);
  ASSERT_TRUE(moduleVerifies(*M));
  // The loop must survive (head has two predecessors, body loops back).
  EXPECT_GE(F->numBlocks(), 2u);
  InterpOptions Options;
  ExecResult R = Interpreter(*M, Options).run("f", {7});
  EXPECT_EQ(R.ReturnValue, 7u);
}

TEST(SimplifyCFGTest, RemovesUnreachableBlocks) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  IRBuilder B(F);
  B.startBlock("entry");
  B.retVoid();
  BasicBlock *Orphan = F->createBlock("orphan");
  B.setBlock(Orphan);
  B.retVoid();

  EXPECT_EQ(runSimplifyCFG(*F), 1u);
  EXPECT_EQ(F->numBlocks(), 1u);
}

TEST(SimplifyCFGTest, PreservesWorkloadSemantics) {
  WorkloadParams Params;
  for (const char *Name : {"Huffman", "jess"}) {
    const Workload *W = findWorkload(Name);
    ASSERT_NE(W, nullptr);
    auto Pristine = W->Build(Params);
    auto Simplified = cloneModule(*Pristine);
    unsigned Removed = 0;
    for (const auto &F : Simplified->functions())
      Removed += runSimplifyCFG(*F);
    EXPECT_GT(Removed, 0u) << Name; // Structured builders leave joins.
    ASSERT_TRUE(moduleVerifies(*Simplified));

    InterpOptions Java;
    Java.Semantics = ExecSemantics::Java;
    EXPECT_EQ(Interpreter(*Simplified, Java).run("main").ReturnValue,
              Interpreter(*Pristine, Java).run("main").ReturnValue)
        << Name;
  }
}

} // namespace
