//===- tests/order_test.cpp - Order determination unit tests --------------------===//

#include "analysis/ProfileInfo.h"
#include "ir/IRBuilder.h"
#include "sxe/Conversion64.h"
#include "sxe/OrderDetermination.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sxe;

namespace {

/// entry -> loop(loop body with one extension) -> exit(one extension).
struct OrderFixture {
  std::unique_ptr<Module> M;
  Function *F;
  Instruction *LoopExt = nullptr;
  Instruction *ExitExt = nullptr;
  Instruction *EntryExt = nullptr;

  OrderFixture() {
    M = std::make_unique<Module>("m");
    F = M->createFunction("f", Type::F64);
    Reg N = F->addParam(Type::I32, "n");
    IRBuilder B(F);
    B.startBlock("entry");
    Reg Zero = B.constI32(0);
    Reg X = B.add32(N, N, "x");
    EntryExt = B.sextTo(X, 32, X);
    Reg I = F->newReg(Type::I32, "i");
    B.copyTo(I, Zero);
    Reg T = F->newReg(Type::I32, "t");
    B.copyTo(T, Zero);
    BasicBlock *Head = F->createBlock("head");
    BasicBlock *Body = F->createBlock("body");
    BasicBlock *Exit = F->createBlock("exit");
    B.jmp(Head);
    B.setBlock(Head);
    Reg C = B.cmp32(CmpPred::SLT, I, N);
    B.br(C, Body, Exit);
    B.setBlock(Body);
    B.binopTo(T, Opcode::Add, Width::W32, T, X);
    LoopExt = B.sextTo(T, 32, T);
    Reg One = B.constI32(1);
    B.binopTo(I, Opcode::Add, Width::W32, I, One);
    B.jmp(Head);
    B.setBlock(Exit);
    ExitExt = B.sextTo(T, 32, T);
    Reg D = B.i2d(T, "d");
    B.ret(D);
  }
};

size_t positionOf(const std::vector<Instruction *> &Order,
                  const Instruction *Ext) {
  auto It = std::find(Order.begin(), Order.end(), Ext);
  EXPECT_NE(It, Order.end());
  return static_cast<size_t>(It - Order.begin());
}

TEST(OrderDeterminationTest, HotBlocksComeFirst) {
  OrderFixture Fx;
  std::vector<Instruction *> Order = extensionsByFrequency(*Fx.F, nullptr);
  ASSERT_EQ(Order.size(), 3u);
  // Loop body (depth 1) before entry (1.0) before exit (0.5).
  EXPECT_LT(positionOf(Order, Fx.LoopExt), positionOf(Order, Fx.EntryExt));
  EXPECT_LT(positionOf(Order, Fx.EntryExt), positionOf(Order, Fx.ExitExt));
}

TEST(OrderDeterminationTest, InsertedFirstWithinATier) {
  OrderFixture Fx;
  // Pretend the loop has a second, inserted extension after the original.
  auto Ext = std::make_unique<Instruction>(Opcode::Sext32);
  Ext->setDest(Fx.LoopExt->dest());
  Ext->addOperand(Fx.LoopExt->dest());
  Instruction *InsertedExt =
      Fx.LoopExt->parent()->insertAfter(Fx.LoopExt, std::move(Ext));

  std::unordered_set<Instruction *> Inserted = {InsertedExt};
  std::vector<Instruction *> Order =
      extensionsByFrequency(*Fx.F, nullptr, &Inserted);
  // The inserted one is analyzed before the original despite appearing
  // later in program order.
  EXPECT_LT(positionOf(Order, InsertedExt), positionOf(Order, Fx.LoopExt));
  // But still after nothing from hotter tiers, and before colder tiers.
  EXPECT_LT(positionOf(Order, Fx.LoopExt), positionOf(Order, Fx.ExitExt));
}

TEST(OrderDeterminationTest, ReverseDFSVisitsLatestFirst) {
  OrderFixture Fx;
  std::vector<Instruction *> Order = extensionsInReverseDFS(*Fx.F);
  ASSERT_EQ(Order.size(), 3u);
  // Entry is visited first by the DFS, so its extension comes LAST.
  EXPECT_EQ(Order.back(), Fx.EntryExt);
}

TEST(OrderDeterminationTest, ProfileSkewsTheTiers) {
  // Two sibling arms; the profile makes the 'rare' arm hot.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::F64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C = B.cmp32(CmpPred::SLT, P, B.constI32(0));
  BasicBlock *Left = F->createBlock("left");
  BasicBlock *Right = F->createBlock("right");
  BasicBlock *Join = F->createBlock("join");
  Instruction *Branch = B.br(C, Left, Right);
  B.setBlock(Left);
  Reg X = B.add32(P, P, "x");
  Instruction *LeftExt = B.sextTo(X, 32, X);
  B.jmp(Join);
  B.setBlock(Right);
  Reg Y = B.add32(P, P, "y");
  Instruction *RightExt = B.sextTo(Y, 32, Y);
  B.jmp(Join);
  B.setBlock(Join);
  Reg D = B.i2d(P, "d");
  B.ret(D);

  // Without a profile, the 50/50 estimate ties and reverse post-order
  // breaks the tie (the RPO of this diamond visits 'right' first).
  std::vector<Instruction *> Static = extensionsByFrequency(*F, nullptr);
  EXPECT_LT(positionOf(Static, RightExt), positionOf(Static, LeftExt));

  // A profile that takes 'left' 95% of the time flips the order.
  ProfileInfo Profile;
  for (int K = 0; K < 95; ++K)
    Profile.recordBranch(Branch, true); // Left is hot.
  for (int K = 0; K < 5; ++K)
    Profile.recordBranch(Branch, false);
  std::vector<Instruction *> Order = extensionsByFrequency(*F, &Profile);
  EXPECT_LT(positionOf(Order, LeftExt), positionOf(Order, RightExt));
}

} // namespace
