//===- tests/workloads_test.cpp - Differential tests over all kernels ----------===//
//
// For every benchmark kernel and every pipeline variant: the optimized
// machine-semantics execution must produce the Java-semantics oracle
// checksum with no trap (in particular no WildAddress, the miscompile
// detector), the post-pipeline module must verify with no dummies left,
// and the headline variant must remove extensions.
//
//===---------------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

class WorkloadSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadSweep, AllVariantsMatchOracle) {
  const Workload &W = allWorkloads()[GetParam()];
  RunnerOptions Options;
  WorkloadReport Report = runWorkload(W, Options);

  ASSERT_EQ(Report.Rows.size(), NumVariants);
  for (const VariantRow &Row : Report.Rows) {
    EXPECT_EQ(Row.Trap, TrapKind::None)
        << W.Name << " / " << variantName(Row.V) << ": "
        << trapKindName(Row.Trap);
    EXPECT_EQ(Row.Checksum, Report.OracleChecksum)
        << W.Name << " / " << variantName(Row.V);
  }

  const VariantRow *Baseline = Report.row(Variant::Baseline);
  const VariantRow *First = Report.row(Variant::FirstAlgorithm);
  const VariantRow *All = Report.row(Variant::All);
  ASSERT_TRUE(Baseline && First && All);

  // The paper's global shape: the new algorithm dominates the baseline and
  // the first algorithm on every benchmark program.
  EXPECT_GT(Baseline->DynamicSext32, 0u) << W.Name;
  EXPECT_LE(First->DynamicSext32, Baseline->DynamicSext32) << W.Name;
  EXPECT_LE(All->DynamicSext32, First->DynamicSext32) << W.Name;
  EXPECT_LT(All->DynamicSext32, Baseline->DynamicSext32) << W.Name;

  // Removing extensions must never make the cycle estimate worse.
  EXPECT_LE(All->Cycles, Baseline->Cycles) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, WorkloadSweep,
    ::testing::Range<size_t>(0, allWorkloads().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = allWorkloads()[Info.param].Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
