//===- tests/codegen_test.cpp - Native backend tests -----------------------------===//
//
// Exercises the baseline x86-64 backend layer by layer: lowering to
// machine IR, live-interval construction on branchy and loopy CFGs,
// linear-scan allocation under artificially tight register pools (the
// k+1-values-on-k-registers spill round-trips), the machine verifier's
// structural checks, and — on hosts that can execute x86-64 — full
// native-vs-interpreter parity on hand-built functions and the pinned
// corpus programs, including trap kinds, the call-depth guard, and the
// fuel-based step limit.
//
//===---------------------------------------------------------------------------===//

#include "codegen/CycleModel.h"
#include "codegen/LiveIntervals.h"
#include "codegen/Lowering.h"
#include "codegen/MachineVerifier.h"
#include "codegen/NativeEngine.h"
#include "codegen/RegAlloc.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "target/TargetInfo.h"

#include <fstream>
#include <sstream>
#include <gtest/gtest.h>

using namespace sxe;

namespace {

/// Interpreter options that model the same machine the native code runs
/// on: Machine semantics on the x86_64 target.
InterpOptions x86MachineOptions() {
  InterpOptions Options;
  Options.Target = &TargetInfo::x86_64();
  Options.Semantics = ExecSemantics::Machine;
  return Options;
}

/// Runs \p M both natively and under the x86_64-model interpreter and
/// expects identical trap kind and (on clean exit) return value.
void expectNativeMatchesInterp(Module &M, const std::vector<uint64_t> &Args = {},
                               const NativeOptions &NOpts = {}) {
  if (!NativeModule::hostSupported())
    GTEST_SKIP() << "host cannot execute emitted x86-64 code";

  InterpOptions IOpts = x86MachineOptions();
  IOpts.MaxSteps = NOpts.MaxSteps;
  IOpts.MaxCallDepth = NOpts.MaxCallDepth;
  IOpts.MaxArrayLen = NOpts.MaxArrayLen;
  ExecResult Want = Interpreter(M, IOpts).run("main", Args);

  std::string Error;
  auto NM = NativeModule::compile(M, NOpts, &Error);
  ASSERT_NE(NM, nullptr) << Error;
  ExecResult Got = NM->run("main", Args);

  EXPECT_EQ(Got.Trap, Want.Trap)
      << "native trap '" << trapKindName(Got.Trap) << "' vs interpreter '"
      << trapKindName(Want.Trap) << "'";
  if (Want.Trap == TrapKind::None && Got.Trap == TrapKind::None)
    EXPECT_EQ(Got.ReturnValue, Want.ReturnValue);
}

// --- Lowering ---------------------------------------------------------------

TEST(LoweringTest, ProducesTwoAddressMachineIR) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg A = F->addParam(Type::I64, "a");
  Reg B = F->addParam(Type::I64, "b");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Reg Sum = Bld.add64(A, B, "sum");
  Bld.ret(Sum);

  LoweringStats Stats;
  auto MIR = lowerModule(M, &Stats);
  ASSERT_EQ(MIR->Functions.size(), 1u);
  MFunction &MF = *MIR->Functions[0];
  EXPECT_EQ(MF.NumParams, 2u);
  EXPECT_EQ(Stats.Functions, 1u);
  EXPECT_GT(Stats.MachineInsts, 0u);

  // The entry block loads both parameters before any body instruction.
  ASSERT_FALSE(MF.Blocks.empty());
  const auto &Entry = MF.Blocks.front()->Insts;
  ASSERT_GE(Entry.size(), 3u);
  EXPECT_EQ(Entry[0].Op, MOp::LoadParam);
  EXPECT_EQ(Entry[1].Op, MOp::LoadParam);

  // Two-address discipline: every ALU instruction reads its Def.
  for (const auto &Blk : MF.Blocks)
    for (const MInst &I : Blk->Insts)
      if (I.Op >= MOp::Add && I.Op <= MOp::Not) {
        ASSERT_FALSE(I.Uses.empty());
        EXPECT_EQ(I.Uses[0], I.Def);
      }

  std::string Text = printMachineFunction(MF);
  EXPECT_NE(Text.find("mfunc main"), std::string::npos);
  EXPECT_NE(Text.find("loadparam"), std::string::npos);
}

TEST(LoweringTest, ConversionsBecomeExplicitInstructions) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg A = F->addParam(Type::I64, "a");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Reg S = Bld.sext(16, A, "s");
  Reg Z = Bld.zext32(S, "z");
  Bld.ret(Z);

  LoweringStats Stats;
  auto MIR = lowerModule(M, &Stats);
  EXPECT_EQ(Stats.Conversions, 2u);
  std::string Text = printMachineFunction(*MIR->Functions[0]);
  EXPECT_NE(Text.find("movsx16"), std::string::npos);
  EXPECT_NE(Text.find("movl"), std::string::npos);
}

// --- Live intervals ---------------------------------------------------------

TEST(LiveIntervalTest, ValueLiveAcrossDiamondSpansBothArms) {
  // entry defines Base; the diamond's arms define different addends; the
  // join uses Base again, so Base's interval must cover both arms.
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg P = F->addParam(Type::I64, "p");
  IRBuilder Bld(F);
  BasicBlock *Entry = Bld.startBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");

  Bld.setBlock(Entry);
  Reg Base = Bld.add64(P, P, "base");
  Reg T = F->newReg(Type::I64, "t");
  Bld.br(P, Then, Else);
  Bld.setBlock(Then);
  Bld.constTo(T, 10);
  Bld.jmp(Join);
  Bld.setBlock(Else);
  Bld.constTo(T, 20);
  Bld.jmp(Join);
  Bld.setBlock(Join);
  Reg Out = Bld.add64(Base, T, "out");
  Bld.ret(Out);

  auto MIR = lowerModule(M);
  MFunction &MF = *MIR->Functions[0];
  BlockLiveness BL = computeBlockLiveness(MF);

  // Machine vreg of Base = FirstVirtReg + Base.
  uint32_t BaseV = FirstVirtReg + Base;
  for (uint32_t BlockId = 1; BlockId <= 2; ++BlockId) { // then, else
    EXPECT_TRUE(BL.LiveIn[BlockId][BaseV - FirstVirtReg])
        << "Base not live into arm " << BlockId;
  }

  auto Intervals = computeLiveIntervals(MF);
  ASSERT_FALSE(Intervals.empty());
  // Intervals arrive sorted by start.
  for (size_t Index = 1; Index < Intervals.size(); ++Index)
    EXPECT_LE(Intervals[Index - 1].Start, Intervals[Index].Start);

  const LiveInterval *BaseLI = nullptr;
  for (const auto &LI : Intervals)
    if (LI.VReg == BaseV)
      BaseLI = &LI;
  ASSERT_NE(BaseLI, nullptr);
  // It must reach the join block's use.
  uint32_t JoinStart = MF.Blocks[3]->Insts.front().Pos;
  EXPECT_GE(BaseLI->End, JoinStart);
}

TEST(LiveIntervalTest, LoopCarriedValueCoversWholeLoop) {
  // sum is redefined in the body and used at the header: live around the
  // backedge, so its interval covers the entire loop.
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg N = F->addParam(Type::I64, "n");
  IRBuilder Bld(F);
  BasicBlock *Entry = Bld.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");

  Reg I = F->newReg(Type::I64, "i");
  Reg Sum = F->newReg(Type::I64, "sum");
  Bld.setBlock(Entry);
  Bld.constTo(I, 0);
  Bld.constTo(Sum, 0);
  Bld.jmp(Header);
  Bld.setBlock(Header);
  Reg Cond = Bld.cmp64(CmpPred::SLT, I, N, "cond");
  Bld.br(Cond, Body, Exit);
  Bld.setBlock(Body);
  Bld.binopTo(Sum, Opcode::Add, Width::W64, Sum, I);
  Reg One = Bld.constI64(1);
  Bld.binopTo(I, Opcode::Add, Width::W64, I, One);
  Bld.jmp(Header);
  Bld.setBlock(Exit);
  Bld.ret(Sum);

  auto MIR = lowerModule(M);
  MFunction &MF = *MIR->Functions[0];
  auto Intervals = computeLiveIntervals(MF);

  uint32_t SumV = FirstVirtReg + Sum;
  const LiveInterval *SumLI = nullptr;
  for (const auto &LI : Intervals)
    if (LI.VReg == SumV)
      SumLI = &LI;
  ASSERT_NE(SumLI, nullptr);

  // The interval must cover every instruction of header and body.
  uint32_t HeaderStart = MF.Blocks[1]->Insts.front().Pos;
  uint32_t BodyEnd = MF.Blocks[2]->Insts.back().Pos;
  EXPECT_LE(SumLI->Start, HeaderStart);
  EXPECT_GE(SumLI->End, BodyEnd);
}

// --- Register allocation ----------------------------------------------------

/// Builds a function keeping \p Live values simultaneously live, then
/// consuming them in definition order.
std::unique_ptr<Module> manyLiveValuesModule(unsigned Live) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  Reg P = F->addParam(Type::I64, "p");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  std::vector<Reg> Vals;
  for (unsigned Index = 0; Index < Live; ++Index) {
    Reg C = Bld.constI64(Index + 1);
    Vals.push_back(Bld.add64(P, C));
  }
  Reg Acc = Vals[0];
  for (unsigned Index = 1; Index < Live; ++Index)
    Acc = Bld.mul64(Acc, Vals[Index]);
  Bld.ret(Acc);
  return M;
}

TEST(RegAllocTest, KPlus1ValuesOnKRegistersSpills) {
  auto M = manyLiveValuesModule(6);
  auto MIR = lowerModule(*M);
  MFunction &MF = *MIR->Functions[0];

  RegAllocOptions Tight;
  Tight.MaxCalleeSaved = 2;
  Tight.MaxCallerSaved = 2; // k = 4 registers for >= 6 live values.
  RegAllocResult RA = allocateRegisters(MF, Tight);
  EXPECT_GT(RA.NumSpilledIntervals, 0u);
  EXPECT_GT(RA.NumSpillSlots, 0u);
  EXPECT_GT(RA.NumSpillLoads, 0u);
  EXPECT_GT(RA.NumSpillStores, 0u);

  // The rewritten function still verifies.
  EXPECT_EQ(verifyMachineFunction(MF, &RA.Intervals), "");
}

TEST(RegAllocTest, AmpleRegistersSpillNothing) {
  auto M = manyLiveValuesModule(4);
  auto MIR = lowerModule(*M);
  RegAllocResult RA = allocateRegisters(*MIR->Functions[0]);
  EXPECT_EQ(RA.NumSpilledIntervals, 0u);
  EXPECT_EQ(verifyMachineFunction(*MIR->Functions[0], &RA.Intervals), "");
}

TEST(RegAllocTest, SpilledCodeComputesTheSameAnswer) {
  auto M = manyLiveValuesModule(10);
  NativeOptions Tight;
  Tight.RegAlloc.MaxCalleeSaved = 1;
  Tight.RegAlloc.MaxCallerSaved = 1;
  expectNativeMatchesInterp(*M, {7});

  if (NativeModule::hostSupported()) {
    std::string Error;
    auto NM = NativeModule::compile(*M, Tight, &Error);
    ASSERT_NE(NM, nullptr) << Error;
    EXPECT_GT(NM->info().SpilledIntervals, 0u);
    ExecResult Got = NM->run("main", {7});
    ExecResult Want = Interpreter(*M, x86MachineOptions()).run("main", {7});
    EXPECT_EQ(Got.ReturnValue, Want.ReturnValue);
  }
}

// --- Machine verifier -------------------------------------------------------

TEST(MachineVerifierTest, RejectsUnallocatedVirtualRegisters) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg P = F->addParam(Type::I64, "p");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Bld.ret(Bld.add64(P, P));

  auto MIR = lowerModule(M);
  // No register allocation ran: virtual registers remain.
  EXPECT_NE(verifyMachineFunction(*MIR->Functions[0]), "");
}

TEST(MachineVerifierTest, RejectsMissingTerminator) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  F->addParam(Type::I64, "p");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Bld.retVoid();

  auto MIR = lowerModule(M);
  MFunction &MF = *MIR->Functions[0];
  allocateRegisters(MF);
  ASSERT_EQ(verifyMachineFunction(MF), "");
  MF.Blocks.front()->Insts.pop_back(); // Drop the RetR.
  EXPECT_NE(verifyMachineFunction(MF), "");
}

TEST(MachineVerifierTest, RejectsReservedRegisters) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  F->addParam(Type::I64, "p");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Bld.retVoid();

  auto MIR = lowerModule(M);
  MFunction &MF = *MIR->Functions[0];
  allocateRegisters(MF);
  MInst Bad(MOp::MovRR);
  Bad.Def = RSP;
  Bad.Uses.push_back(RAX);
  MF.Blocks.front()->Insts.insert(MF.Blocks.front()->Insts.begin(), Bad);
  EXPECT_NE(verifyMachineFunction(MF), "");
}

// --- Native execution: arithmetic parity ------------------------------------

TEST(NativeTest, AddW32ZeroExtendsLikeTheHardware) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Reg A = Bld.constI32(0x7FFFFFFF);
  Reg One = Bld.constI32(1);
  Reg Sum = Bld.add32(A, One, "sum");
  Reg Wide = F->newReg(Type::I64, "wide");
  Bld.copyTo(Wide, Sum);
  Bld.ret(Wide);
  expectNativeMatchesInterp(M);

  if (NativeModule::hostSupported()) {
    auto NM = NativeModule::compile(M);
    ASSERT_NE(NM, nullptr);
    // addl writes a 32-bit register: the result is 2^31, zero-extended.
    EXPECT_EQ(NM->run("main").ReturnValue, uint64_t(1) << 31);
  }
}

TEST(NativeTest, ShiftFamilyMatchesInterpreter) {
  for (Opcode Op : {Opcode::Shl, Opcode::Shr, Opcode::Sar}) {
    for (Width W : {Width::W32, Width::W64}) {
      Module M("m");
      Function *F = M.createFunction("main", Type::I64);
      Reg A = F->addParam(Type::I64, "a");
      Reg C = F->addParam(Type::I64, "c");
      IRBuilder Bld(F);
      Bld.startBlock("entry");
      Bld.ret(Bld.binop(Op, W, A, C));
      // Negative value, oversized count: exercises count masking and the
      // W32 zero-extension of the result.
      expectNativeMatchesInterp(M, {static_cast<uint64_t>(-7), 35});
      expectNativeMatchesInterp(M, {0xDEADBEEFCAFEBABEull, 4});
    }
  }
}

TEST(NativeTest, DivisionJavaSemantics) {
  // INT32_MIN / -1 wraps; uses parameters so no folding can hide it.
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg A = F->addParam(Type::I32, "a");
  Reg B = F->addParam(Type::I32, "b");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Bld.ret(Bld.div32(A, B));
  expectNativeMatchesInterp(
      M, {static_cast<uint64_t>(INT32_MIN), static_cast<uint64_t>(-1)});
  expectNativeMatchesInterp(M, {100, 7});
  expectNativeMatchesInterp(M, {100, 0}); // DivByZero parity.
}

TEST(NativeTest, Div64MinByMinusOneWraps) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg A = F->addParam(Type::I64, "a");
  Reg B = F->addParam(Type::I64, "b");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Bld.ret(Bld.binop(Opcode::Div, Width::W64, A, B));
  expectNativeMatchesInterp(
      M, {static_cast<uint64_t>(INT64_MIN), static_cast<uint64_t>(-1)});
  expectNativeMatchesInterp(M, {static_cast<uint64_t>(-100), 9});
}

TEST(NativeTest, FloatingPointAndD2ISaturation) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Reg Big = Bld.constF64(1e18);
  Reg Two = Bld.constF64(2.0);
  Reg Prod = Bld.fmul(Big, Two, "prod");
  Reg I = Bld.d2i(Prod, "i"); // Saturates to INT32_MAX, zero-extended.
  Bld.ret(I);
  expectNativeMatchesInterp(M);
}

TEST(NativeTest, FCmpNaNOnlyNotEqualHolds) {
  for (CmpPred Pred : {CmpPred::EQ, CmpPred::NE, CmpPred::SLT, CmpPred::SGE}) {
    Module M("m");
    Function *F = M.createFunction("main", Type::I64);
    IRBuilder Bld(F);
    Bld.startBlock("entry");
    Reg Zero = Bld.constF64(0.0);
    Reg NaN = Bld.fdiv(Zero, Zero, "nan");
    Reg One = Bld.constF64(1.0);
    Bld.ret(Bld.fcmp(Pred, NaN, One));
    expectNativeMatchesInterp(M);
  }
}

TEST(NativeTest, SextAfterUnextendedW32AddCanonicalizes) {
  // The paper's core scenario: a W32 add leaves 2^31 in the register;
  // the sext32 then produces the canonical negative value.
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Reg A = Bld.constI32(0x7FFFFFFF);
  Reg One = Bld.constI32(1);
  Reg Sum = Bld.add32(A, One, "sum");
  Bld.sextTo(Sum, 32, Sum);
  Reg Wide = F->newReg(Type::I64, "wide");
  Bld.copyTo(Wide, Sum);
  Bld.ret(Wide);
  expectNativeMatchesInterp(M);

  if (NativeModule::hostSupported()) {
    auto NM = NativeModule::compile(M);
    ASSERT_NE(NM, nullptr);
    EXPECT_EQ(static_cast<int64_t>(NM->run("main").ReturnValue), INT32_MIN);
  }
}

// --- Native execution: arrays, calls, control flow --------------------------

TEST(NativeTest, ArrayRoundTripAndTraps) {
  // Fill a[i] = i*3 over an I16 array, then sum it back.
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg N = F->addParam(Type::I64, "n");
  IRBuilder Bld(F);
  BasicBlock *Entry = Bld.startBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");

  Reg I = F->newReg(Type::I64, "i");
  Reg Sum = F->newReg(Type::I64, "sum");
  Bld.setBlock(Entry);
  Reg Arr = Bld.newArray(Type::I16, N, "arr");
  Bld.constTo(I, 0);
  Bld.constTo(Sum, 0);
  Bld.jmp(Header);
  Bld.setBlock(Header);
  Reg Len = Bld.arrayLen(Arr, "len");
  Reg Cond = Bld.cmp64(CmpPred::SLT, I, Len, "cond");
  Bld.br(Cond, Body, Exit);
  Bld.setBlock(Body);
  Reg Three = Bld.constI64(3);
  Reg V = Bld.mul64(I, Three, "v");
  Bld.arrayStore(Type::I16, Arr, I, V);
  Reg Back = Bld.arrayLoad(Type::I16, Arr, I, "back");
  Bld.binopTo(Sum, Opcode::Add, Width::W64, Sum, Back);
  Reg One = Bld.constI64(1);
  Bld.binopTo(I, Opcode::Add, Width::W64, I, One);
  Bld.jmp(Header);
  Bld.setBlock(Exit);
  Bld.ret(Sum);

  expectNativeMatchesInterp(M, {50});
  expectNativeMatchesInterp(M, {0});
  // Negative length: NegativeArraySize on both engines.
  expectNativeMatchesInterp(M, {static_cast<uint64_t>(-3)});
}

TEST(NativeTest, OutOfBoundsTrapsIdentically) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg Index = F->addParam(Type::I64, "idx");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Reg Ten = Bld.constI64(10);
  Reg Arr = Bld.newArray(Type::I32, Ten, "arr");
  Bld.ret(Bld.arrayLoad(Type::I32, Arr, Index, "v"));
  expectNativeMatchesInterp(M, {9});
  expectNativeMatchesInterp(M, {10}); // BoundsCheck
  expectNativeMatchesInterp(M, {static_cast<uint64_t>(-1)});
}

TEST(NativeTest, ExplicitTrapPropagates) {
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Bld.trap();
  expectNativeMatchesInterp(M);
}

TEST(NativeTest, CallsPassArgumentsAndReturnValues) {
  Module M("m");
  Function *Callee = M.createFunction("weighted", Type::I64);
  {
    Reg A = Callee->addParam(Type::I64, "a");
    Reg B = Callee->addParam(Type::I64, "b");
    Reg C = Callee->addParam(Type::I64, "c");
    IRBuilder Bld(Callee);
    Bld.startBlock("entry");
    Reg AB = Bld.mul64(A, B, "ab");
    Bld.ret(Bld.add64(AB, C, "r"));
  }
  Function *F = M.createFunction("main", Type::I64);
  Reg P = F->addParam(Type::I64, "p");
  IRBuilder Bld(F);
  Bld.startBlock("entry");
  Reg Two = Bld.constI64(2);
  Reg Five = Bld.constI64(5);
  Reg R1 = Bld.call(Callee, {P, Two, Five}, "r1");
  Reg R2 = Bld.call(Callee, {R1, P, R1}, "r2");
  Bld.ret(R2);
  expectNativeMatchesInterp(M, {13});
}

TEST(NativeTest, RecursionHitsStackOverflowInLockstep) {
  // f(n) = n <= 0 ? 0 : f(n-1)+n; driven past the depth limit.
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  Reg N = F->addParam(Type::I64, "n");
  IRBuilder Bld(F);
  BasicBlock *Entry = Bld.startBlock("entry");
  BasicBlock *Base = F->createBlock("base");
  BasicBlock *Rec = F->createBlock("rec");
  Bld.setBlock(Entry);
  Reg Zero = Bld.constI64(0);
  Reg IsPos = Bld.cmp64(CmpPred::SGT, N, Zero, "pos");
  Bld.br(IsPos, Rec, Base);
  Bld.setBlock(Base);
  Bld.ret(Zero);
  Bld.setBlock(Rec);
  Reg One = Bld.constI64(1);
  Reg NM1 = Bld.sub64(N, One, "nm1");
  Reg Sub = Bld.call(F, {NM1}, "sub");
  Bld.ret(Bld.add64(Sub, N));

  NativeOptions Opts;
  Opts.MaxCallDepth = 64;
  expectNativeMatchesInterp(M, {10}, Opts);   // Completes: 55.
  expectNativeMatchesInterp(M, {1000}, Opts); // StackOverflow on both.
}

TEST(NativeTest, FuelExhaustionReportsStepLimit) {
  // while (true) {} under a tiny step budget.
  Module M("m");
  Function *F = M.createFunction("main", Type::I64);
  IRBuilder Bld(F);
  BasicBlock *Entry = Bld.startBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  Bld.setBlock(Entry);
  Bld.jmp(Loop);
  Bld.setBlock(Loop);
  Bld.jmp(Loop);

  if (!NativeModule::hostSupported())
    GTEST_SKIP() << "host cannot execute emitted x86-64 code";
  NativeOptions Opts;
  Opts.MaxSteps = 1000;
  auto NM = NativeModule::compile(M, Opts);
  ASSERT_NE(NM, nullptr);
  ExecResult R = NM->run("main");
  EXPECT_EQ(R.Trap, TrapKind::StepLimit);
  EXPECT_GE(R.ExecutedInstructions, 1000u);
}

// --- Corpus parity ----------------------------------------------------------

class CorpusNativeParity : public ::testing::TestWithParam<const char *> {};

TEST_P(CorpusNativeParity, NativeMatchesX86Interpreter) {
  if (!NativeModule::hostSupported())
    GTEST_SKIP() << "host cannot execute emitted x86-64 code";

  std::string Path =
      std::string(SXE_SOURCE_DIR) + "/tests/corpus/" + GetParam() + ".sxir";
  std::ifstream In(Path);
  ASSERT_TRUE(static_cast<bool>(In)) << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  ParseResult Parsed = parseModule(Buffer.str());
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;

  InterpOptions IOpts = x86MachineOptions();
  IOpts.MaxSteps = 1u << 22;
  ExecResult Want = Interpreter(*Parsed.M, IOpts).run("main");

  NativeOptions NOpts;
  NOpts.MaxSteps = 1u << 22;
  std::string Error;
  auto NM = NativeModule::compile(*Parsed.M, NOpts, &Error);
  ASSERT_NE(NM, nullptr) << Error;
  ExecResult Got = NM->run("main");

  // Fuel is block-granular, so a step-limited run is compared on the
  // trap kind only (and both engines must agree it was step-limited).
  EXPECT_EQ(Got.Trap, Want.Trap)
      << GetParam() << ": native '" << trapKindName(Got.Trap)
      << "' vs interpreter '" << trapKindName(Want.Trap) << "'";
  if (Want.Trap == TrapKind::None && Got.Trap == TrapKind::None)
    EXPECT_EQ(Got.ReturnValue, Want.ReturnValue) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusNativeParity,
                         ::testing::Values("reduced_char_compare",
                                           "reduced_loop_carried",
                                           "reduced_mixed_store",
                                           "reduced_copy_demand",
                                           "reduced_call_boundary",
                                           "reduced_w32_inductive_sext",
                                           "generated_small",
                                           "generated_medium",
                                           "generated_large"));

// --- Cycle model ------------------------------------------------------------

TEST(CycleModelTest, WeighsLoopsHotterAndCountsSpills) {
  auto M = manyLiveValuesModule(10);
  auto MIR = lowerModule(*M);
  MFunction &MF = *MIR->Functions[0];
  RegAllocOptions Tight;
  Tight.MaxCalleeSaved = 1;
  Tight.MaxCallerSaved = 1;
  allocateRegisters(MF, Tight);

  CycleEstimate E = estimateFunctionCycles(MF, TargetInfo::x86_64());
  EXPECT_GT(E.Cycles, 0.0);
  EXPECT_GT(E.SpillCycles, 0.0); // The tight pool forced spill traffic.
  EXPECT_GT(E.Insts, 0u);
  EXPECT_LE(E.SpillCycles, E.Cycles);

  CycleEstimate Module = estimateModuleCycles(*MIR, TargetInfo::x86_64());
  EXPECT_DOUBLE_EQ(Module.Cycles, E.Cycles);
}

} // namespace
