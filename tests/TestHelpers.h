//===- tests/TestHelpers.h - Shared test utilities ----------------*- C++ -*-===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
//===----------------------------------------------------------------------===//

#ifndef SXE_TESTS_TESTHELPERS_H
#define SXE_TESTS_TESTHELPERS_H

#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

namespace sxe {
namespace test {

/// Counts Sext8/16/32 instructions in a block.
inline unsigned countSext(const BasicBlock &BB) {
  unsigned Count = 0;
  for (const Instruction &I : BB)
    Count += I.isSext() ? 1 : 0;
  return Count;
}

/// Counts Sext8/16/32 instructions in a function.
inline unsigned countSext(const Function &F) {
  unsigned Count = 0;
  for (const auto &BB : F.blocks())
    Count += countSext(*BB);
  return Count;
}

/// Counts dummy just_extended markers in a function.
inline unsigned countDummies(const Function &F) {
  unsigned Count = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : *BB)
      Count += I.isDummyExtend() ? 1 : 0;
  return Count;
}

/// gtest assertion that a module verifies cleanly.
inline ::testing::AssertionResult moduleVerifies(const Module &M,
                                                 bool AllowDummies = true) {
  std::vector<std::string> Problems;
  VerifierOptions Options;
  Options.AllowDummyExtends = AllowDummies;
  if (verifyModule(M, Problems, Options))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << Problems.front();
}

} // namespace test
} // namespace sxe

#endif // SXE_TESTS_TESTHELPERS_H
