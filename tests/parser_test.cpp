//===- tests/parser_test.cpp - Textual IR round-trip tests ----------------------===//

#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "tests/TestHelpers.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace sxe;
using namespace sxe::test;

namespace {

TEST(ParserTest, ParsesMinimalFunction) {
  ParseResult R = parseModule(R"(
module "t"
func @f(%p: i32) -> i32 {
  reg %x: i32
entry:
  %x = add.w32 %p, %p
  ret %x
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(moduleVerifies(*R.M));
  Function *F = R.M->findFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->countInstructions(), 2u);
}

TEST(ParserTest, ParsesAllInstructionForms) {
  ParseResult R = parseModule(R"(
func @helper(%v: i32) -> i32 {
entry:
  ret %v
}
func @f(%a: arrayref, %p: i32, %d: f64) -> f64 {
  reg %x: i32
  reg %y: i64
  reg %z: f64
  reg %c: i32
  reg %ch: u16
  reg %len: i32
  reg %arr: arrayref
entry:
  %x = const.i32 -42
  %y = const.i64 1099511627776
  %z = fconst 0x1.8p3
  %x = copy %p
  %x = sub.w32 %x, %p
  %x = shr.w32 %x, %p
  %x = sext8 %x
  %x = zext8 %x
  %ch = zext16 %x
  %y = zext32 %x
  %y = trunc32 %y
  %z = fadd %z, %d
  %z = i2d %x
  %x = d2i %z
  %c = cmp.w32 slt %x, %p
  %c = fcmp sge %z, %d
  %len = const.i32 8
  %arr = newarray.i16 %len
  %len = arraylen %arr
  %x = arrayload.i32 %a, %len
  arraystore.i32 %a, %len, %x
  %x = call @helper(%x)
  br %c, then, done
then:
  jmp done
done:
  ret %z
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(moduleVerifies(*R.M));
}

TEST(ParserTest, RoundTripsThroughPrinter) {
  // Build a nontrivial module (a real workload), print it, parse it, and
  // print again: the two prints must be identical.
  WorkloadParams Params;
  auto M = buildCompress(Params);
  std::string First = printModule(*M);
  ParseResult R = parseModule(First);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(First, printModule(*R.M));
}

class AllWorkloadsRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(AllWorkloadsRoundTrip, PrintParsePrint) {
  WorkloadParams Params;
  auto M = allWorkloads()[GetParam()].Build(Params);
  std::string First = printModule(*M);
  ParseResult R = parseModule(First);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(moduleVerifies(*R.M));
  EXPECT_EQ(First, printModule(*R.M));
}

INSTANTIATE_TEST_SUITE_P(Kernels, AllWorkloadsRoundTrip,
                         ::testing::Range<size_t>(0, allWorkloads().size()));

TEST(ParserTest, ReportsUnknownRegister) {
  ParseResult R = parseModule(R"(
func @f() -> void {
entry:
  ret %nope
}
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("nope"), std::string::npos);
}

TEST(ParserTest, ReportsUnknownMnemonic) {
  ParseResult R = parseModule(R"(
func @f() -> void {
entry:
  frobnicate
}
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos);
}

TEST(ParserTest, ReportsUndefinedBlock) {
  ParseResult R = parseModule(R"(
func @f(%c: i32) -> void {
entry:
  br %c, nowhere, entry
}
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("nowhere"), std::string::npos);
}

TEST(ParserTest, ReportsUndefinedCallee) {
  ParseResult R = parseModule(R"(
func @f() -> void {
entry:
  call @ghost()
  ret
}
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("ghost"), std::string::npos);
}

TEST(ParserTest, ReportsMissingWidthSuffix) {
  ParseResult R = parseModule(R"(
func @f(%p: i32) -> void {
  reg %x: i32
entry:
  %x = add %p, %p
  ret
}
)");
  ASSERT_FALSE(R.ok());
}

TEST(ParserTest, CommentsAndWhitespace) {
  ParseResult R = parseModule(R"(
; leading comment
func @f() -> i32 {   // trailing comment
  reg %x: i32
entry:
  %x = const.i32 7 ; seven
  ret %x
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
}

TEST(ParserTest, ReportsOverflowingIntegerLiteral) {
  ParseResult R = parseModule(R"(
func @f() -> i64 {
  reg %x: i64
entry:
  %x = const.i64 99999999999999999999
  ret %x
}
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("out of range"), std::string::npos) << R.Error;
}

TEST(ParserTest, ReportsMalformedIntegerLiteral) {
  ParseResult R = parseModule(R"(
func @f() -> i32 {
  reg %x: i32
entry:
  %x = const.i32 0x
  ret %x
}
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("integer literal"), std::string::npos) << R.Error;
}

TEST(ParserTest, ReportsOverflowingFloatLiteral) {
  ParseResult R = parseModule(R"(
func @f() -> f64 {
  reg %x: f64
entry:
  %x = fconst 1e999
  ret %x
}
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("out of range"), std::string::npos) << R.Error;
}

TEST(ParserTest, ReportsTruncatedInput) {
  // Cut off mid-function: the parser must diagnose, not walk off the
  // token array.
  ParseResult R = parseModule("func @f() -> i32 {\nentry:\n  %x = ");
  ASSERT_FALSE(R.ok());
  EXPECT_FALSE(R.Error.empty());
}

TEST(ParserTest, ReportsUnterminatedString) {
  ParseResult R = parseModule("module \"never closed\nfunc @f() -> void {\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unterminated"), std::string::npos) << R.Error;
}

TEST(ParserTest, EscapesControlBytesInDiagnostics) {
  // A control byte in the offending token must be escaped, not echoed.
  std::string Source = "func @f() -> void {\nentry:\n  ";
  Source.push_back('\x01');
  Source += "\n}\n";
  ParseResult R = parseModule(Source);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error.find('\x01'), std::string::npos);
  EXPECT_NE(R.Error.find("\\x01"), std::string::npos) << R.Error;
}

TEST(ParserTest, HexFloatRoundTrip) {
  ParseResult R = parseModule(R"(
func @f() -> f64 {
  reg %x: f64
entry:
  %x = fconst -0x1.921fb54442d18p+1
  ret %x
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Instruction &I = R.M->findFunction("f")->entryBlock()->front();
  EXPECT_DOUBLE_EQ(I.floatValue(), -0x1.921fb54442d18p+1);
}

} // namespace
