//===- tests/interp_test.cpp - Machine/Java semantics tests ----------------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

/// Runs a freshly built single-function module and returns the result.
ExecResult runModule(Module &M, InterpOptions Options = {},
                     const std::vector<uint64_t> &Args = {}) {
  Interpreter Interp(M, Options);
  return Interp.run("main", Args);
}

TEST(InterpTest, W32AddLeavesUpperBitsUnextended) {
  // 0x7fffffff + 1 on canonical inputs: the 64-bit register holds 2^31,
  // NOT the sign-extended int value.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(0x7FFFFFFF);
  Reg One = B.constI32(1);
  Reg Sum32 = B.add32(A, One, "sum");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Sum32); // Exposes the raw register.
  B.ret(Wide);

  ExecResult R = runModule(*M);
  EXPECT_EQ(R.ReturnValue, uint64_t(1) << 31); // Upper bits NOT sign bits.
}

TEST(InterpTest, Sext32CountsAndCanonicalizes) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(0x7FFFFFFF);
  Reg One = B.constI32(1);
  Reg Sum32 = B.add32(A, One, "sum");
  B.sextTo(Sum32, 32, Sum32);
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Sum32);
  B.ret(Wide);

  ExecResult R = runModule(*M);
  EXPECT_EQ(R.ReturnValue,
            static_cast<uint64_t>(static_cast<int64_t>(INT32_MIN)));
  EXPECT_EQ(R.ExecutedSext32, 1u);
  EXPECT_EQ(R.totalExecutedSext(), 1u);
}

TEST(InterpTest, JavaModeCanonicalizesAutomatically) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(0x7FFFFFFF);
  Reg One = B.constI32(1);
  Reg Sum32 = B.add32(A, One, "sum");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Sum32);
  B.ret(Wide);

  InterpOptions Java;
  Java.Semantics = ExecSemantics::Java;
  ExecResult R = runModule(*M, Java);
  EXPECT_EQ(R.ReturnValue,
            static_cast<uint64_t>(static_cast<int64_t>(INT32_MIN)));
}

TEST(InterpTest, W32DivisionFollowsJavaSemantics) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Min = B.constI32(INT32_MIN);
  Reg MinusOne = B.constI32(-1);
  Reg Q = B.div32(Min, MinusOne, "q"); // Java: wraps to INT32_MIN.
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Q);
  B.ret(Wide);

  ExecResult R = runModule(*M);
  EXPECT_EQ(static_cast<int64_t>(R.ReturnValue), INT32_MIN);
}

TEST(InterpTest, DivisionByZeroTraps) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(7);
  Reg Zero = B.constI32(0);
  Reg Q = B.div32(A, Zero);
  B.ret(Q);
  EXPECT_EQ(runModule(*M).Trap, TrapKind::DivByZero);
}

TEST(InterpTest, BoundsCheckUsesLower32Bits) {
  // Index register = 2^32 + 1: lower half 1 is in range, and the full
  // value disagrees -> the wild-address detector fires.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(8);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Idx = B.constI64((int64_t(1) << 32) + 1);
  Reg V = B.arrayLoad(Type::I32, Arr, Idx, "v");
  B.ret(V);
  EXPECT_EQ(runModule(*M).Trap, TrapKind::WildAddress);
}

TEST(InterpTest, OutOfBoundsTrapsBeforeWildCheck) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(8);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Idx = B.constI32(-1); // Lower 32 = 0xffffffff >= 8 unsigned.
  Reg V = B.arrayLoad(Type::I32, Arr, Idx, "v");
  B.ret(V);
  EXPECT_EQ(runModule(*M).Trap, TrapKind::BoundsCheck);
}

TEST(InterpTest, NegativeArraySizeTraps) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(-5);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg V = B.arrayLoad(Type::I32, Arr, Zero);
  B.ret(V);
  EXPECT_EQ(runModule(*M).Trap, TrapKind::NegativeArraySize);
}

TEST(InterpTest, AllocationLimitEnforced) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(1000);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg V = B.arrayLoad(Type::I32, Arr, Zero);
  B.ret(V);

  InterpOptions Options;
  Options.MaxArrayLen = 999; // Configured resource limit (Theorem 4).
  EXPECT_EQ(runModule(*M, Options).Trap, TrapKind::AllocationLimit);
}

TEST(InterpTest, ByteLoadsZeroExtendOnIA64) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(1);
  Reg Arr = B.newArray(Type::I8, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg Neg = B.constI32(-1); // Stored as 0xff.
  B.arrayStore(Type::I8, Arr, Zero, Neg);
  Reg Raw = B.arrayLoad(Type::I8, Arr, Zero, "raw");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Raw);
  B.ret(Wide);
  EXPECT_EQ(runModule(*M).ReturnValue, 0xFFu); // Zero-extended raw byte.
  EXPECT_EQ(runModule(*M).ExecutedSext8, 0u);
}

TEST(InterpTest, ShortLoadsSignExtendOnPPC64) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(1);
  Reg Arr = B.newArray(Type::I16, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg Neg = B.constI32(-2);
  B.arrayStore(Type::I16, Arr, Zero, Neg);
  Reg Raw = B.arrayLoad(Type::I16, Arr, Zero, "raw");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Raw);
  B.ret(Wide);

  ExecResult IA64 = runModule(*M);
  EXPECT_EQ(IA64.ReturnValue, 0xFFFEu); // ld2: zero-extended.

  InterpOptions PPC;
  PPC.Target = &TargetInfo::ppc64();
  ExecResult PPC64 = runModule(*M, PPC);
  EXPECT_EQ(static_cast<int64_t>(PPC64.ReturnValue), -2); // lha.
}

TEST(InterpTest, D2ISaturates) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Big = B.constF64(1e18);
  Reg Q = B.d2i(Big, "q");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Q);
  B.ret(Wide);
  EXPECT_EQ(static_cast<int64_t>(runModule(*M).ReturnValue), INT32_MAX);
}

TEST(InterpTest, ShrW32IgnoresGarbageUpperBits) {
  // x >>> 0 of a register with garbage upper bits extracts the low half.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Garbage = B.constI64((int64_t(0xABCD) << 32) | 0x123);
  Reg Zero = B.constI32(0);
  Reg R = B.shr32(Garbage, Zero, "r");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, R);
  B.ret(Wide);
  EXPECT_EQ(runModule(*M).ReturnValue, 0x123u);
}

TEST(InterpTest, CallsReturnThroughRegisters) {
  auto M = std::make_unique<Module>("m");
  Function *Callee = M->createFunction("twice", Type::I32);
  {
    Reg P = Callee->addParam(Type::I32, "p");
    IRBuilder B(Callee);
    B.startBlock("entry");
    Reg Two = B.constI32(2);
    Reg R = B.mul32(P, Two);
    B.sextTo(R, 32, R);
    B.ret(R);
  }
  Function *Main = M->createFunction("main", Type::I32);
  {
    IRBuilder B(Main);
    B.startBlock("entry");
    Reg C = B.constI32(21);
    Reg R = B.call(Callee, {C});
    B.ret(R);
  }
  EXPECT_EQ(runModule(*M).ReturnValue, 42u);
}

TEST(InterpTest, StackOverflowTraps) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Result = F->newReg(Type::I32, "r");
  B.callTo(Result, F, {}); // Infinite recursion.
  B.ret(Result);

  InterpOptions Options;
  Options.MaxCallDepth = 64;
  EXPECT_EQ(runModule(*M, Options).Trap, TrapKind::StackOverflow);
}

TEST(InterpTest, StepLimitTraps) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  B.jmp(Entry); // Infinite loop.

  InterpOptions Options;
  Options.MaxSteps = 1000;
  EXPECT_EQ(runModule(*M, Options).Trap, TrapKind::StepLimit);
}

TEST(InterpTest, ProfileCollection) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg Ten = B.constI32(10);
  Reg I = F->newReg(Type::I32, "i");
  B.copyTo(I, Zero);
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Head);
  B.setBlock(Head);
  Reg C = B.cmp32(CmpPred::SLT, I, Ten);
  Instruction *Branch = B.br(C, Body, Exit);
  B.setBlock(Body);
  Reg One = B.constI32(1);
  B.binopTo(I, Opcode::Add, Width::W32, I, One);
  B.jmp(Head);
  B.setBlock(Exit);
  B.ret(I);

  ProfileInfo Profile;
  InterpOptions Options;
  Options.Profile = &Profile;
  runModule(*M, Options);
  auto P = Profile.takenProbability(Branch);
  ASSERT_TRUE(P.has_value());
  EXPECT_NEAR(*P, 10.0 / 11.0, 1e-9);
}

} // namespace
