//===- tests/interp_test.cpp - Machine/Java semantics tests ----------------------===//

#include "interp/Interpreter.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "sxe/Pipeline.h"
#include "target/TargetInfo.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

/// Runs a freshly built single-function module and returns the result.
ExecResult runModule(Module &M, InterpOptions Options = {},
                     const std::vector<uint64_t> &Args = {}) {
  Interpreter Interp(M, Options);
  return Interp.run("main", Args);
}

TEST(InterpTest, W32AddLeavesUpperBitsUnextended) {
  // 0x7fffffff + 1 on canonical inputs: the 64-bit register holds 2^31,
  // NOT the sign-extended int value.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(0x7FFFFFFF);
  Reg One = B.constI32(1);
  Reg Sum32 = B.add32(A, One, "sum");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Sum32); // Exposes the raw register.
  B.ret(Wide);

  ExecResult R = runModule(*M);
  EXPECT_EQ(R.ReturnValue, uint64_t(1) << 31); // Upper bits NOT sign bits.
}

TEST(InterpTest, Sext32CountsAndCanonicalizes) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(0x7FFFFFFF);
  Reg One = B.constI32(1);
  Reg Sum32 = B.add32(A, One, "sum");
  B.sextTo(Sum32, 32, Sum32);
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Sum32);
  B.ret(Wide);

  ExecResult R = runModule(*M);
  EXPECT_EQ(R.ReturnValue,
            static_cast<uint64_t>(static_cast<int64_t>(INT32_MIN)));
  EXPECT_EQ(R.ExecutedSext32, 1u);
  EXPECT_EQ(R.totalExecutedSext(), 1u);
}

TEST(InterpTest, JavaModeCanonicalizesAutomatically) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(0x7FFFFFFF);
  Reg One = B.constI32(1);
  Reg Sum32 = B.add32(A, One, "sum");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Sum32);
  B.ret(Wide);

  InterpOptions Java;
  Java.Semantics = ExecSemantics::Java;
  ExecResult R = runModule(*M, Java);
  EXPECT_EQ(R.ReturnValue,
            static_cast<uint64_t>(static_cast<int64_t>(INT32_MIN)));
}

TEST(InterpTest, W32DivisionFollowsJavaSemantics) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Min = B.constI32(INT32_MIN);
  Reg MinusOne = B.constI32(-1);
  Reg Q = B.div32(Min, MinusOne, "q"); // Java: wraps to INT32_MIN.
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Q);
  B.ret(Wide);

  ExecResult R = runModule(*M);
  EXPECT_EQ(static_cast<int64_t>(R.ReturnValue), INT32_MIN);
}

TEST(InterpTest, DivisionByZeroTraps) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(7);
  Reg Zero = B.constI32(0);
  Reg Q = B.div32(A, Zero);
  B.ret(Q);
  EXPECT_EQ(runModule(*M).Trap, TrapKind::DivByZero);
}

TEST(InterpTest, BoundsCheckUsesLower32Bits) {
  // Index register = 2^32 + 1: lower half 1 is in range, and the full
  // value disagrees -> the wild-address detector fires.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(8);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Idx = B.constI64((int64_t(1) << 32) + 1);
  Reg V = B.arrayLoad(Type::I32, Arr, Idx, "v");
  B.ret(V);
  EXPECT_EQ(runModule(*M).Trap, TrapKind::WildAddress);
}

TEST(InterpTest, OutOfBoundsTrapsBeforeWildCheck) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(8);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Idx = B.constI32(-1); // Lower 32 = 0xffffffff >= 8 unsigned.
  Reg V = B.arrayLoad(Type::I32, Arr, Idx, "v");
  B.ret(V);
  EXPECT_EQ(runModule(*M).Trap, TrapKind::BoundsCheck);
}

TEST(InterpTest, NegativeArraySizeTraps) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(-5);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg V = B.arrayLoad(Type::I32, Arr, Zero);
  B.ret(V);
  EXPECT_EQ(runModule(*M).Trap, TrapKind::NegativeArraySize);
}

TEST(InterpTest, AllocationLimitEnforced) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(1000);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg V = B.arrayLoad(Type::I32, Arr, Zero);
  B.ret(V);

  InterpOptions Options;
  Options.MaxArrayLen = 999; // Configured resource limit (Theorem 4).
  EXPECT_EQ(runModule(*M, Options).Trap, TrapKind::AllocationLimit);
}

TEST(InterpTest, ByteLoadsZeroExtendOnIA64) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(1);
  Reg Arr = B.newArray(Type::I8, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg Neg = B.constI32(-1); // Stored as 0xff.
  B.arrayStore(Type::I8, Arr, Zero, Neg);
  Reg Raw = B.arrayLoad(Type::I8, Arr, Zero, "raw");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Raw);
  B.ret(Wide);
  EXPECT_EQ(runModule(*M).ReturnValue, 0xFFu); // Zero-extended raw byte.
  EXPECT_EQ(runModule(*M).ExecutedSext8, 0u);
}

TEST(InterpTest, ShortLoadsSignExtendOnPPC64) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(1);
  Reg Arr = B.newArray(Type::I16, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg Neg = B.constI32(-2);
  B.arrayStore(Type::I16, Arr, Zero, Neg);
  Reg Raw = B.arrayLoad(Type::I16, Arr, Zero, "raw");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Raw);
  B.ret(Wide);

  ExecResult IA64 = runModule(*M);
  EXPECT_EQ(IA64.ReturnValue, 0xFFFEu); // ld2: zero-extended.

  InterpOptions PPC;
  PPC.Target = &TargetInfo::ppc64();
  ExecResult PPC64 = runModule(*M, PPC);
  EXPECT_EQ(static_cast<int64_t>(PPC64.ReturnValue), -2); // lha.
}

TEST(InterpTest, D2ISaturates) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Big = B.constF64(1e18);
  Reg Q = B.d2i(Big, "q");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Q);
  B.ret(Wide);
  EXPECT_EQ(static_cast<int64_t>(runModule(*M).ReturnValue), INT32_MAX);
}

TEST(InterpTest, ShrW32IgnoresGarbageUpperBits) {
  // x >>> 0 of a register with garbage upper bits extracts the low half.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Garbage = B.constI64((int64_t(0xABCD) << 32) | 0x123);
  Reg Zero = B.constI32(0);
  Reg R = B.shr32(Garbage, Zero, "r");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, R);
  B.ret(Wide);
  EXPECT_EQ(runModule(*M).ReturnValue, 0x123u);
}

TEST(InterpTest, CallsReturnThroughRegisters) {
  auto M = std::make_unique<Module>("m");
  Function *Callee = M->createFunction("twice", Type::I32);
  {
    Reg P = Callee->addParam(Type::I32, "p");
    IRBuilder B(Callee);
    B.startBlock("entry");
    Reg Two = B.constI32(2);
    Reg R = B.mul32(P, Two);
    B.sextTo(R, 32, R);
    B.ret(R);
  }
  Function *Main = M->createFunction("main", Type::I32);
  {
    IRBuilder B(Main);
    B.startBlock("entry");
    Reg C = B.constI32(21);
    Reg R = B.call(Callee, {C});
    B.ret(R);
  }
  EXPECT_EQ(runModule(*M).ReturnValue, 42u);
}

TEST(InterpTest, StackOverflowTraps) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Result = F->newReg(Type::I32, "r");
  B.callTo(Result, F, {}); // Infinite recursion.
  B.ret(Result);

  InterpOptions Options;
  Options.MaxCallDepth = 64;
  EXPECT_EQ(runModule(*M, Options).Trap, TrapKind::StackOverflow);
}

TEST(InterpTest, StepLimitTraps) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  B.jmp(Entry); // Infinite loop.

  InterpOptions Options;
  Options.MaxSteps = 1000;
  EXPECT_EQ(runModule(*M, Options).Trap, TrapKind::StepLimit);
}

/// Runs \p Pristine under the Java oracle, then every pipeline variant on
/// every target under machine semantics, asserting the trap kind and (for
/// clean runs) the return value match the oracle exactly. Arithmetic edge
/// cases must trap or wrap identically no matter what was optimized away.
void expectTrapParity(const Module &Pristine, TrapKind ExpectedTrap,
                      uint64_t ExpectedValue) {
  InterpOptions Java;
  Java.Semantics = ExecSemantics::Java;
  ExecResult Oracle = Interpreter(Pristine, Java).run("main");
  EXPECT_EQ(Oracle.Trap, ExpectedTrap);
  if (ExpectedTrap == TrapKind::None)
    EXPECT_EQ(Oracle.ReturnValue, ExpectedValue);

  for (const TargetInfo *Target :
       {&TargetInfo::ia64(), &TargetInfo::ppc64(), &TargetInfo::generic64()}) {
    for (Variant V : AllVariants) {
      auto Clone = cloneModule(Pristine);
      runPipeline(*Clone, PipelineConfig::forVariant(V, *Target));
      InterpOptions Machine;
      Machine.Target = Target;
      ExecResult Got = Interpreter(*Clone, Machine).run("main");
      EXPECT_EQ(Got.Trap, Oracle.Trap)
          << variantName(V) << ", " << Target->name();
      if (Oracle.Trap == TrapKind::None) {
        EXPECT_EQ(Got.ReturnValue, Oracle.ReturnValue)
            << variantName(V) << ", " << Target->name();
      }
    }
  }
}

/// Builds main with an i32 array holding \p Values; \p Body gets a loader
/// that fetches element I as a canonical (sign-extended) i32. Values pass
/// through memory so no pass can fold the edge case away at compile time.
std::unique_ptr<Module>
buildArrayProbe(const std::vector<int32_t> &Values,
                const std::function<void(IRBuilder &, Function *,
                                         std::function<Reg(unsigned)>)> &Body) {
  auto M = std::make_unique<Module>("trap_probe");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(static_cast<int32_t>(Values.size()));
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  for (size_t Index = 0; Index < Values.size(); ++Index)
    B.arrayStore(Type::I32, Arr, B.constI32(static_cast<int32_t>(Index)),
                 B.constI32(Values[Index]));
  auto Load = [&B, Arr](unsigned Index) {
    Reg Raw = B.arrayLoad(Type::I32, Arr, B.constI32(Index), "raw");
    return B.sext(32, Raw, "canon");
  };
  Body(B, F, Load);
  return M;
}

TEST(InterpTrapParity, IntMinDivMinusOneW32WrapsEverywhere) {
  auto M = buildArrayProbe({INT32_MIN, -1}, [](IRBuilder &B, Function *F,
                                               std::function<Reg(unsigned)> L) {
    Reg Q = B.div32(L(0), L(1), "q");
    Reg Canon = B.sext(32, Q, "canonq");
    Reg Wide = F->newReg(Type::I64, "wide");
    B.copyTo(Wide, Canon);
    B.ret(Wide);
  });
  // Java semantics: Integer.MIN_VALUE / -1 wraps to Integer.MIN_VALUE.
  expectTrapParity(*M, TrapKind::None,
                   static_cast<uint64_t>(static_cast<int64_t>(INT32_MIN)));
}

TEST(InterpTrapParity, IntMinRemMinusOneIsZeroEverywhere) {
  auto M = buildArrayProbe({INT32_MIN, -1}, [](IRBuilder &B, Function *F,
                                               std::function<Reg(unsigned)> L) {
    Reg R = B.rem32(L(0), L(1), "r");
    Reg Canon = B.sext(32, R, "canonr");
    Reg Wide = F->newReg(Type::I64, "wide");
    B.copyTo(Wide, Canon);
    B.ret(Wide);
  });
  expectTrapParity(*M, TrapKind::None, 0);
}

TEST(InterpTrapParity, DivByZeroTrapsEverywhere) {
  auto M = buildArrayProbe({7, 0}, [](IRBuilder &B, Function *F,
                                      std::function<Reg(unsigned)> L) {
    Reg Q = B.div32(L(0), L(1), "q");
    Reg Wide = F->newReg(Type::I64, "wide");
    B.copyTo(Wide, B.sext(32, Q));
    B.ret(Wide);
  });
  expectTrapParity(*M, TrapKind::DivByZero, 0);
}

TEST(InterpTrapParity, LongMinDivMinusOneW64WrapsEverywhere) {
  auto M = std::make_unique<Module>("trap_probe");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(2);
  Reg Arr = B.newArray(Type::I64, Len, "wide_arr");
  B.arrayStore(Type::I64, Arr, B.constI32(0), B.constI64(INT64_MIN));
  B.arrayStore(Type::I64, Arr, B.constI32(1), B.constI64(-1));
  Reg A = B.arrayLoad(Type::I64, Arr, B.constI32(0), "a");
  Reg D = B.arrayLoad(Type::I64, Arr, B.constI32(1), "d");
  Reg Q = B.binop(Opcode::Div, Width::W64, A, D, "q");
  B.ret(Q);
  expectTrapParity(*M, TrapKind::None, static_cast<uint64_t>(INT64_MIN));
}

TEST(InterpTrapParity, ShiftCountsAtOrAboveWidthMaskEverywhere) {
  // Java masks 32-bit shift counts to their low 5 bits: x << 32 == x,
  // x << 33 == x << 1, x >> 35 == x >> 3. The counts travel through
  // memory so no pass can canonicalize them away.
  auto M = buildArrayProbe(
      {1, 32, 33, INT32_MIN, 35},
      [](IRBuilder &B, Function *F, std::function<Reg(unsigned)> L) {
        Reg ById32 = B.shl32(L(0), L(1), "by32");   // 1 << 32 == 1
        Reg ByOne = B.shl32(L(0), L(2), "by33");    // 1 << 33 == 2
        Reg SarHigh = B.sar32(L(3), L(4), "sar35"); // MIN >> 35 == MIN >> 3
        Reg Acc = F->newReg(Type::I64, "acc");
        B.copyTo(Acc, B.sext(32, ById32));
        Reg W1 = F->newReg(Type::I64, "w1");
        B.copyTo(W1, B.sext(32, ByOne));
        B.binopTo(Acc, Opcode::Add, Width::W64, Acc, W1);
        Reg W2 = F->newReg(Type::I64, "w2");
        B.copyTo(W2, B.sext(32, SarHigh));
        B.binopTo(Acc, Opcode::Add, Width::W64, Acc, W2);
        B.ret(Acc);
      });
  int64_t Expected = 1 + 2 + (static_cast<int64_t>(INT32_MIN) >> 3);
  expectTrapParity(*M, TrapKind::None, static_cast<uint64_t>(Expected));
}

TEST(InterpTest, ProfileCollection) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg Ten = B.constI32(10);
  Reg I = F->newReg(Type::I32, "i");
  B.copyTo(I, Zero);
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Head);
  B.setBlock(Head);
  Reg C = B.cmp32(CmpPred::SLT, I, Ten);
  Instruction *Branch = B.br(C, Body, Exit);
  B.setBlock(Body);
  Reg One = B.constI32(1);
  B.binopTo(I, Opcode::Add, Width::W32, I, One);
  B.jmp(Head);
  B.setBlock(Exit);
  B.ret(I);

  ProfileInfo Profile;
  InterpOptions Options;
  Options.Profile = &Profile;
  runModule(*M, Options);
  auto P = Profile.takenProbability(Branch);
  ASSERT_TRUE(P.has_value());
  EXPECT_NEAR(*P, 10.0 / 11.0, 1e-9);
}

} // namespace
