//===- tests/target_test.cpp - Target model, cost model, static census ------------===//

#include "ir/IRBuilder.h"
#include "target/CostModel.h"
#include "target/StaticCounts.h"
#include "target/TargetInfo.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

//===----------------------------------------------------------------------===//
// TargetInfo matrices
//===----------------------------------------------------------------------===//

TEST(TargetInfoTest, Singletons) {
  // Pointer identity is meaningful: passes and the interpreter compare
  // TargetInfo pointers to agree on the machine model.
  EXPECT_EQ(&TargetInfo::ia64(), &TargetInfo::ia64());
  EXPECT_EQ(&TargetInfo::ppc64(), &TargetInfo::ppc64());
  EXPECT_EQ(&TargetInfo::generic64(), &TargetInfo::generic64());
  EXPECT_NE(&TargetInfo::ia64(), &TargetInfo::ppc64());
  EXPECT_NE(&TargetInfo::ia64(), &TargetInfo::generic64());

  EXPECT_EQ(TargetInfo::ia64().name(), "ia64");
  EXPECT_EQ(TargetInfo::ppc64().name(), "ppc64");
  EXPECT_EQ(TargetInfo::generic64().name(), "generic64");

  EXPECT_EQ(TargetInfo::ia64().pointerWidthBits(), 64u);
  EXPECT_EQ(TargetInfo::ppc64().pointerWidthBits(), 64u);
  EXPECT_EQ(TargetInfo::generic64().pointerWidthBits(), 64u);
}

TEST(TargetInfoTest, LoadSignExtensionMatrix) {
  const TargetInfo &IA64 = TargetInfo::ia64();
  const TargetInfo &PPC = TargetInfo::ppc64();
  const TargetInfo &Gen = TargetInfo::generic64();

  // Byte and char loads zero-extend on every modeled target (PPC64 has no
  // sign-extending byte load; Java char is unsigned by definition).
  for (const TargetInfo *T : {&IA64, &PPC, &Gen}) {
    EXPECT_FALSE(T->loadSignExtends(Type::I8)) << T->name();
    EXPECT_FALSE(T->loadSignExtends(Type::U16)) << T->name();
    // Full-width loads fill the register; the question does not arise.
    EXPECT_FALSE(T->loadSignExtends(Type::I64)) << T->name();
    EXPECT_FALSE(T->loadSignExtends(Type::F64)) << T->name();
    EXPECT_FALSE(T->loadSignExtends(Type::ArrayRef)) << T->name();
  }

  // IA64 zero-extends every sub-register load ("values are zero-extended
  // during memory reads") — the premise of Theorems 1 and 3.
  EXPECT_FALSE(IA64.loadSignExtends(Type::I16));
  EXPECT_FALSE(IA64.loadSignExtends(Type::I32));

  // PPC64's lha/lwa sign-extend — the paper's Section 1 contrast, and the
  // ISSUE acceptance assertion.
  EXPECT_TRUE(PPC.loadSignExtends(Type::I16));
  EXPECT_TRUE(PPC.loadSignExtends(Type::I32));

  // generic64 behaves like IA64 for memory.
  EXPECT_FALSE(Gen.loadSignExtends(Type::I16));
  EXPECT_FALSE(Gen.loadSignExtends(Type::I32));
}

TEST(TargetInfoTest, CompareAndAddressingMatrix) {
  // IA64 cmp4 and PPC64 cmpw exist; generic64 models Section 3's machine
  // without 32-bit compares, where bounds checks need canonical operands.
  EXPECT_TRUE(TargetInfo::ia64().has32BitCompare());
  EXPECT_TRUE(TargetInfo::ppc64().has32BitCompare());
  EXPECT_FALSE(TargetInfo::generic64().has32BitCompare());

  // shladd fuses scale+add on IA64; PPC64/generic64 shift then add.
  const AddressingMode &IA = TargetInfo::ia64().addressing();
  const AddressingMode &PA = TargetInfo::ppc64().addressing();
  const AddressingMode &GA = TargetInfo::generic64().addressing();
  EXPECT_TRUE(IA.FusedScaleAdd);
  EXPECT_FALSE(PA.FusedScaleAdd);
  EXPECT_FALSE(GA.FusedScaleAdd);
  EXPECT_LT(IA.AddressCycles, PA.AddressCycles);
  EXPECT_EQ(PA.AddressCycles, GA.AddressCycles);
}

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

/// Builds one of each interesting instruction in a scratch function.
struct CostFixture {
  std::unique_ptr<Module> M{std::make_unique<Module>("m")};
  Function *F{M->createFunction("f", Type::I32)};
  Reg P{F->addParam(Type::I32, "p")};
  Reg A{F->addParam(Type::ArrayRef, "a")};
  IRBuilder B{F};

  CostFixture() { B.startBlock("entry"); }

  const Instruction &last() { return F->entryBlock()->back(); }
};

TEST(CostModelTest, MonotonicityAcrossOpcodes) {
  CostFixture Fx;
  auto &B = Fx.B;

  B.add32(Fx.P, Fx.P);
  const Instruction &Add = Fx.last();
  B.mul32(Fx.P, Fx.P);
  const Instruction &Mul = Fx.last();
  B.div32(Fx.P, Fx.P);
  const Instruction &Div = Fx.last();
  B.arrayLoad(Type::I32, Fx.A, Fx.P);
  const Instruction &Load = Fx.last();
  B.arrayStore(Type::I32, Fx.A, Fx.P, Fx.P);
  const Instruction &Store = Fx.last();
  B.sext(32, Fx.P);
  const Instruction &Sext = Fx.last();

  for (const TargetInfo *T :
       {&TargetInfo::ia64(), &TargetInfo::ppc64(), &TargetInfo::generic64()}) {
    // The extension the optimization removes costs exactly one ALU cycle.
    EXPECT_EQ(instructionCycleCost(Sext, *T), 1u) << T->name();
    EXPECT_EQ(instructionCycleCost(Add, *T), 1u) << T->name();
    // div > load > 0, and a multiply sits strictly between ALU and divide.
    EXPECT_GT(instructionCycleCost(Load, *T), 0u) << T->name();
    EXPECT_GT(instructionCycleCost(Div, *T), instructionCycleCost(Load, *T))
        << T->name();
    EXPECT_GT(instructionCycleCost(Mul, *T), instructionCycleCost(Add, *T))
        << T->name();
    EXPECT_GT(instructionCycleCost(Div, *T), instructionCycleCost(Mul, *T))
        << T->name();
    // Stores pay the same bounds check and addressing as loads.
    EXPECT_GT(instructionCycleCost(Store, *T), 0u) << T->name();
  }
}

TEST(CostModelTest, AddressingAsymmetry) {
  CostFixture Fx;
  Fx.B.arrayLoad(Type::I32, Fx.A, Fx.P);
  const Instruction &Load = Fx.last();
  Fx.B.arrayStore(Type::I32, Fx.A, Fx.P, Fx.P);
  const Instruction &Store = Fx.last();

  // The ISSUE acceptance assertion: shladd makes IA64's array access
  // cheaper than PPC64's separate shift+add.
  EXPECT_LT(instructionCycleCost(Load, TargetInfo::ia64()),
            instructionCycleCost(Load, TargetInfo::ppc64()));
  EXPECT_LT(instructionCycleCost(Store, TargetInfo::ia64()),
            instructionCycleCost(Store, TargetInfo::ppc64()));
  // Exactly the fused-vs-separate address cycle accounts for the gap.
  EXPECT_EQ(instructionCycleCost(Load, TargetInfo::ppc64()) -
                instructionCycleCost(Load, TargetInfo::ia64()),
            TargetInfo::ppc64().addressing().AddressCycles -
                TargetInfo::ia64().addressing().AddressCycles);
}

TEST(CostModelTest, DummiesAreFree) {
  CostFixture Fx;
  Instruction Dummy(Opcode::JustExtended);
  Dummy.setDest(Fx.P);
  Dummy.addOperand(Fx.P);
  EXPECT_EQ(instructionCycleCost(Dummy, TargetInfo::ia64()), 0u);
  EXPECT_EQ(instructionCycleCost(Dummy, TargetInfo::ppc64()), 0u);
  EXPECT_EQ(instructionCycleCost(Dummy, TargetInfo::generic64()), 0u);
}

//===----------------------------------------------------------------------===//
// Static extension census
//===----------------------------------------------------------------------===//

TEST(StaticCountsTest, HandBuiltCensus) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");

  // Known census: 1 sext8, 2 sext16, 3 sext32, 1 zext32, 2 dummies.
  B.sext(8, P);
  B.sext(16, P);
  B.sext(16, P);
  Reg S1 = B.sext(32, P);
  B.sext(32, P);
  B.sext(32, P);
  B.zext32(P);
  for (int K = 0; K < 2; ++K) {
    auto Dummy = std::make_unique<Instruction>(Opcode::JustExtended);
    Dummy->setDest(P);
    Dummy->addOperand(P);
    F->entryBlock()->append(std::move(Dummy));
  }
  B.add32(P, P); // Non-extension noise must not be counted.
  B.ret(S1);

  StaticExtensionCounts Counts = countStaticExtensions(*F);
  EXPECT_EQ(Counts.Sext8, 1u);
  EXPECT_EQ(Counts.Sext16, 2u);
  EXPECT_EQ(Counts.Sext32, 3u);
  EXPECT_EQ(Counts.Zext32, 1u);
  EXPECT_EQ(Counts.Dummies, 2u);
  EXPECT_EQ(Counts.totalSext(), 6u);
}

TEST(StaticCountsTest, ModuleAggregatesFunctions) {
  auto M = std::make_unique<Module>("m");
  for (const char *Name : {"f", "g"}) {
    Function *F = M->createFunction(Name, Type::I32);
    Reg P = F->addParam(Type::I32, "p");
    IRBuilder B(F);
    B.startBlock("entry");
    Reg S = B.sext(32, P);
    B.ret(S);
  }
  StaticExtensionCounts Counts = countStaticExtensions(*M);
  EXPECT_EQ(Counts.Sext32, 2u);
  EXPECT_EQ(Counts.totalSext(), 2u);
  EXPECT_EQ(Counts.Dummies, 0u);
}

TEST(StaticCountsTest, EmptyFunctionCountsZero) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  IRBuilder B(F);
  B.startBlock("entry");
  B.retVoid();
  StaticExtensionCounts Counts = countStaticExtensions(*F);
  EXPECT_EQ(Counts.totalSext(), 0u);
  EXPECT_EQ(Counts.Zext32, 0u);
  EXPECT_EQ(Counts.Dummies, 0u);
}

} // namespace
