//===- tests/pcache_test.cpp - Persistent on-disk code cache --------------------===//
//
// Locks the jit/PersistentCache contracts:
//
//   - an entry document round-trips byte-identically (IR text, per-pass
//     stats, legacy aggregate, remark stream, input hash);
//   - artifacts survive the process boundary: a fresh cache instance on
//     the same directory (with and without index.json) serves them back;
//   - the compile service's tier-two probe returns byte-identical IR and
//     a byte-identical replayed remark stream, and promotes the hit into
//     the in-memory tier;
//   - truncated/corrupted/key-mismatched entries load as a clean miss
//     (and are dropped), after which the service compiles normally;
//   - LRU eviction enforces the byte budget;
//   - enqueue after shutdown() counts Rejected and feeds
//     sxe_rejects_total (shared ledger with serve-layer load shedding).
//
//===-----------------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "jit/CodeCache.h"
#include "jit/CompileService.h"
#include "jit/PersistentCache.h"
#include "obs/Metrics.h"
#include "obs/Remarks.h"
#include "support/IRHash.h"
#include "tests/TestHelpers.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <gtest/gtest.h>

#include <unistd.h>

using namespace sxe;
namespace fs = std::filesystem;

namespace {

/// A fresh temp directory per test, removed on destruction.
struct TempDir {
  fs::path Path;
  explicit TempDir(const char *Tag) {
    static int Counter = 0;
    Path = fs::temp_directory_path() /
           ("sxe-pcache-test-" + std::to_string(::getpid()) + "-" + Tag +
            "-" + std::to_string(Counter++));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

/// The jit_test small module: a W32 add feeding an array load, so the
/// pipeline has an extension to eliminate and remarks to emit.
std::unique_ptr<Module> buildSmallModule(const char *ModuleName = "small",
                                         int32_t Bias = 1) {
  auto M = std::make_unique<Module>(ModuleName);
  Function *F = M->createFunction("kernel", Type::I32);
  Reg A = F->addParam(Type::ArrayRef, "a");
  Reg I = F->addParam(Type::I32, "i");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg T = B.add32(I, B.constI32(Bias), "t");
  Reg V = B.arrayLoad(Type::I32, A, T, "v");
  B.ret(V);
  return M;
}

/// Compiles the small module once (inline mode, remarks on) and returns
/// the artifact plus its cache key.
std::shared_ptr<const CompiledCode> compileReference(std::string &KeyOut,
                                                     int32_t Bias = 1) {
  CompileServiceOptions Options;
  Options.Jobs = 0;
  Options.CollectRemarks = true;
  CompileService Service(Options);
  CompileRequest Request;
  Request.Name = "small";
  Request.M = buildSmallModule("small", Bias);
  Request.Config = PipelineConfig::forVariant(Variant::All);
  uint64_t Hash = hashModule(*Request.M);
  KeyOut = codeCacheKey(Hash, Request.Config);
  CompileResult Result = Service.enqueue(std::move(Request)).get();
  EXPECT_TRUE(Result.Ok) << Result.Error;
  return Result.Code;
}

/// The single object file under <dir>/objects (entry layout detail the
/// corruption tests poke at).
fs::path soleObjectFile(const std::string &Dir) {
  fs::path Objects = fs::path(Dir) / "objects";
  for (const auto &Entry : fs::directory_iterator(Objects))
    if (Entry.path().extension() == ".json")
      return Entry.path();
  ADD_FAILURE() << "no object file under " << Objects;
  return {};
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry encoding
//===----------------------------------------------------------------------===//

TEST(PersistentEntry, RoundTripsByteIdentically) {
  std::string Key;
  std::shared_ptr<const CompiledCode> Code = compileReference(Key);
  ASSERT_TRUE(Code);
  ASSERT_FALSE(Code->Remarks.empty()) << "fixture should produce remarks";

  std::string Text = encodePersistentEntry(Key, *Code);
  CompiledCode Loaded;
  std::string Error;
  ASSERT_TRUE(decodePersistentEntry(Text, Key, Loaded, Error)) << Error;

  EXPECT_EQ(Code->IRText, Loaded.IRText);
  EXPECT_EQ(Code->InputIRHash, Loaded.InputIRHash);
  // Per-pass stats: same registration order, names, values, flags.
  ASSERT_EQ(Code->Stats.entries().size(), Loaded.Stats.entries().size());
  auto It = Loaded.Stats.entries().begin();
  for (const StatEntry &Entry : Code->Stats.entries()) {
    EXPECT_EQ(Entry.Pass, It->Pass);
    EXPECT_EQ(Entry.Name, It->Name);
    EXPECT_EQ(Entry.Value, It->Value);
    EXPECT_EQ(Entry.IsFlag, It->IsFlag);
    ++It;
  }
  EXPECT_EQ(Code->Legacy.ExtensionsEliminated,
            Loaded.Legacy.ExtensionsEliminated);
  EXPECT_EQ(Code->Legacy.TotalNanos, Loaded.Legacy.TotalNanos);
  // The replayed remark stream is byte-identical.
  EXPECT_EQ(remarksToJsonl(Code->Remarks), remarksToJsonl(Loaded.Remarks));
}

TEST(PersistentEntry, RejectsKeyMismatch) {
  std::string Key;
  std::shared_ptr<const CompiledCode> Code = compileReference(Key);
  std::string Text = encodePersistentEntry(Key, *Code);
  CompiledCode Loaded;
  std::string Error;
  EXPECT_FALSE(decodePersistentEntry(Text, Key + "|other", Loaded, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(PersistentEntry, RejectsTamperedPayload) {
  std::string Key;
  std::shared_ptr<const CompiledCode> Code = compileReference(Key);
  std::string Text = encodePersistentEntry(Key, *Code);
  // Flip a byte inside the IR text payload; the checksum must catch it.
  size_t Pos = Text.find("kernel");
  ASSERT_NE(Pos, std::string::npos);
  Text[Pos] = 'x';
  CompiledCode Loaded;
  std::string Error;
  EXPECT_FALSE(decodePersistentEntry(Text, Key, Loaded, Error));
}

//===----------------------------------------------------------------------===//
// Cross-instance persistence
//===----------------------------------------------------------------------===//

TEST(PersistentCache, SurvivesInstanceBoundary) {
  TempDir Dir("instance");
  std::string Key;
  std::shared_ptr<const CompiledCode> Code = compileReference(Key);

  {
    PersistentCache Writer({Dir.str(), 64ull << 20});
    Writer.insert(Key, *Code);
    EXPECT_TRUE(Writer.contains(Key));
  } // Destructor flushes index.json.

  PersistentCache Reader({Dir.str(), 64ull << 20});
  std::shared_ptr<const CompiledCode> Loaded = Reader.lookup(Key);
  ASSERT_TRUE(Loaded);
  EXPECT_EQ(Code->IRText, Loaded->IRText);
  EXPECT_EQ(remarksToJsonl(Code->Remarks), remarksToJsonl(Loaded->Remarks));
  EXPECT_EQ(1u, Reader.stats().Hits);
}

TEST(PersistentCache, RebuildsFromObjectsWhenIndexMissing) {
  TempDir Dir("rescan");
  std::string Key;
  std::shared_ptr<const CompiledCode> Code = compileReference(Key);
  {
    PersistentCache Writer({Dir.str(), 64ull << 20});
    Writer.insert(Key, *Code);
  }
  fs::remove(fs::path(Dir.str()) / "index.json");

  PersistentCache Reader({Dir.str(), 64ull << 20});
  std::shared_ptr<const CompiledCode> Loaded = Reader.lookup(Key);
  ASSERT_TRUE(Loaded);
  EXPECT_EQ(Code->IRText, Loaded->IRText);
}

TEST(PersistentCache, FindsEntriesWrittenByAnotherInstance) {
  // Simulates two live processes sharing a directory: the reader opened
  // (and indexed) the empty store before the writer inserted.
  TempDir Dir("concurrent");
  PersistentCache Reader({Dir.str(), 64ull << 20});
  std::string Key;
  std::shared_ptr<const CompiledCode> Code = compileReference(Key);
  PersistentCache Writer({Dir.str(), 64ull << 20});
  Writer.insert(Key, *Code);

  std::shared_ptr<const CompiledCode> Loaded = Reader.lookup(Key);
  ASSERT_TRUE(Loaded);
  EXPECT_EQ(Code->IRText, Loaded->IRText);
}

//===----------------------------------------------------------------------===//
// Corruption tolerance
//===----------------------------------------------------------------------===//

TEST(PersistentCache, TruncatedEntryIsACleanMiss) {
  TempDir Dir("truncate");
  std::string Key;
  std::shared_ptr<const CompiledCode> Code = compileReference(Key);
  {
    PersistentCache Writer({Dir.str(), 64ull << 20});
    Writer.insert(Key, *Code);
  }
  // Truncate the entry file to half (a crashed writer without the atomic
  // rename, or disk damage).
  fs::path Object = soleObjectFile(Dir.str());
  std::string Text;
  {
    std::ifstream In(Object);
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
  }
  {
    std::ofstream Out(Object, std::ios::trunc);
    Out << Text.substr(0, Text.size() / 2);
  }

  PersistentCache Reader({Dir.str(), 64ull << 20});
  EXPECT_EQ(nullptr, Reader.lookup(Key));
  PersistentCacheStats Stats = Reader.stats();
  EXPECT_EQ(1u, Stats.Misses);
  EXPECT_EQ(1u, Stats.CorruptDropped);
  // The corrupt file was dropped; a second lookup is a plain miss.
  EXPECT_EQ(nullptr, Reader.lookup(Key));
  EXPECT_FALSE(fs::exists(Object));
}

TEST(PersistentCache, CorruptEntryFallsBackToCleanCompile) {
  TempDir Dir("fallback");
  std::string Key;
  std::shared_ptr<const CompiledCode> Reference = compileReference(Key);
  PersistentCache Cache({Dir.str(), 64ull << 20});
  Cache.insert(Key, *Reference);

  // Corrupt the stored artifact in place.
  fs::path Object = soleObjectFile(Dir.str());
  {
    std::ofstream Out(Object, std::ios::trunc);
    Out << "{\"schema\":\"sxe.pcache.v1\",\"key\":\"garbage\"";
  }

  // A service over the corrupted tier compiles cleanly: same IR as the
  // reference, persistent hit NOT reported.
  CodeCache Memory;
  CompileServiceOptions Options;
  Options.Jobs = 0;
  Options.Cache = &Memory;
  Options.Persistent = &Cache;
  Options.CollectRemarks = true;
  CompileService Service(Options);
  CompileRequest Request;
  Request.Name = "small";
  Request.M = buildSmallModule();
  Request.Config = PipelineConfig::forVariant(Variant::All);
  CompileResult Result = Service.enqueue(std::move(Request)).get();
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_FALSE(Result.PersistentHit);
  EXPECT_EQ(Reference->IRText, Result.Code->IRText);
  EXPECT_GE(Cache.stats().CorruptDropped, 1u);
}

//===----------------------------------------------------------------------===//
// Service tier-two integration
//===----------------------------------------------------------------------===//

TEST(PersistentCache, ServiceServesPersistentHitByteIdentically) {
  TempDir Dir("service");
  std::string Key;
  std::shared_ptr<const CompiledCode> Reference = compileReference(Key);

  // First service compiles and writes through to disk.
  {
    PersistentCache Disk({Dir.str(), 64ull << 20});
    CodeCache Memory;
    CompileServiceOptions Options;
    Options.Jobs = 0;
    Options.Cache = &Memory;
    Options.Persistent = &Disk;
    Options.CollectRemarks = true;
    CompileService Service(Options);
    CompileRequest Request;
    Request.Name = "small";
    Request.M = buildSmallModule();
    Request.Config = PipelineConfig::forVariant(Variant::All);
    CompileResult Result = Service.enqueue(std::move(Request)).get();
    ASSERT_TRUE(Result.Ok) << Result.Error;
    EXPECT_FALSE(Result.CacheHit);
    EXPECT_FALSE(Result.PersistentHit);
    EXPECT_EQ(1u, Disk.stats().Insertions);
  }

  // Second service (fresh memory cache, fresh PersistentCache instance —
  // the restart) serves from disk without compiling.
  PersistentCache Disk({Dir.str(), 64ull << 20});
  CodeCache Memory;
  MetricsRegistry Metrics;
  CompileServiceOptions Options;
  Options.Jobs = 0;
  Options.Cache = &Memory;
  Options.Persistent = &Disk;
  Options.Metrics = &Metrics;
  Options.CollectRemarks = true;
  CompileService Service(Options);
  CompileRequest Request;
  Request.Name = "small";
  Request.M = buildSmallModule();
  Request.Config = PipelineConfig::forVariant(Variant::All);
  CompileResult Result = Service.enqueue(std::move(Request)).get();
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.PersistentHit);
  EXPECT_FALSE(Result.CacheHit);
  EXPECT_EQ(Reference->IRText, Result.Code->IRText);
  EXPECT_EQ(remarksToJsonl(Reference->Remarks),
            remarksToJsonl(Result.Code->Remarks));

  CompileServiceStats Stats = Service.stats();
  EXPECT_EQ(1u, Stats.PersistentHits);
  EXPECT_EQ(0u, Stats.Compiled);
  // The hit was promoted into the in-memory tier: a re-enqueue hits there.
  EXPECT_TRUE(Memory.contains(Key));
  CompileRequest Again;
  Again.Name = "small";
  Again.M = buildSmallModule();
  Again.Config = PipelineConfig::forVariant(Variant::All);
  CompileResult Second = Service.enqueue(std::move(Again)).get();
  ASSERT_TRUE(Second.Ok);
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_FALSE(Second.PersistentHit);
  // And the metric matched the counter.
  EXPECT_EQ(1u, Metrics.counter("sxe_persistent_hits_total").value());
}

//===----------------------------------------------------------------------===//
// Eviction
//===----------------------------------------------------------------------===//

TEST(PersistentCache, EvictsLeastRecentlyUsedOverByteBudget) {
  TempDir Dir("evict");
  // Three distinct artifacts (different Bias -> different key + IR).
  std::string Keys[3];
  std::shared_ptr<const CompiledCode> Codes[3];
  for (int I = 0; I < 3; ++I)
    Codes[I] = compileReference(Keys[I], /*Bias=*/I + 1);
  ASSERT_NE(Keys[0], Keys[1]);
  ASSERT_NE(Keys[1], Keys[2]);

  uint64_t EntryBytes = encodePersistentEntry(Keys[0], *Codes[0]).size();
  // Budget for about two entries.
  PersistentCache Cache({Dir.str(), EntryBytes * 2 + EntryBytes / 2});
  Cache.insert(Keys[0], *Codes[0]);
  Cache.insert(Keys[1], *Codes[1]);
  // Touch [0] so [1] becomes the LRU entry.
  EXPECT_TRUE(Cache.lookup(Keys[0]) != nullptr);
  Cache.insert(Keys[2], *Codes[2]);

  PersistentCacheStats Stats = Cache.stats();
  EXPECT_GE(Stats.Evictions, 1u);
  EXPECT_LE(Stats.Bytes, EntryBytes * 2 + EntryBytes / 2);
  EXPECT_TRUE(Cache.contains(Keys[0]));
  EXPECT_FALSE(Cache.contains(Keys[1]));
  EXPECT_TRUE(Cache.contains(Keys[2]));
}

//===----------------------------------------------------------------------===//
// Rejected accounting (shared ledger with serve-layer load shedding)
//===----------------------------------------------------------------------===//

TEST(CompileServiceRejects, EnqueueAfterShutdownCountsRejected) {
  MetricsRegistry Metrics;
  CompileServiceOptions Options;
  Options.Jobs = 1;
  Options.Metrics = &Metrics;
  CompileService Service(Options);
  Service.shutdown();

  CompileRequest Request;
  Request.Name = "late";
  Request.M = buildSmallModule();
  Request.Config = PipelineConfig::forVariant(Variant::All);
  CompileResult Result = Service.enqueue(std::move(Request)).get();
  EXPECT_FALSE(Result.Ok);
  EXPECT_TRUE(Result.Rejected);

  CompileServiceStats Stats = Service.stats();
  EXPECT_EQ(1u, Stats.Rejected);
  EXPECT_EQ(1u, Metrics.counter("sxe_rejects_total").value());

  // The serve layer's load shedding shares the same ledger.
  Service.countRejected();
  EXPECT_EQ(2u, Service.stats().Rejected);
  EXPECT_EQ(2u, Metrics.counter("sxe_rejects_total").value());

  // The pseudo-pass counter mirrors it.
  EXPECT_EQ(2u, Service.stats().Aggregate.value("compile-service",
                                                "rejected"));
}
