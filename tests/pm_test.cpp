//===- tests/pm_test.cpp - Pass-manager instrumentation invariants --------------===//
//
// Locks the contracts of the src/pm/ layer:
//
//  - per-pass counters are additive across functions (running {f}, {g},
//    and {f, g} through the same pipeline sums each counter, mode flags
//    excepted);
//  - the elimination pass's `sext_eliminated` counter equals the
//    before/after delta of the static extension census;
//  - verify-each names a deliberately-broken injected pass, both for IR
//    corruption and for a silent extension-census regression;
//  - timers cover exactly the pipeline's pass sequence;
//  - the JSON report carries the locked `sxe.pass-stats.v1` envelope and
//    the legacy PipelineStats projection agrees with the raw counters.
//
//===---------------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "parser/Parser.h"
#include "pm/InstrumentedPipeline.h"
#include "pm/Passes.h"
#include "pm/Report.h"
#include "target/StaticCounts.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

// A countdown array sum: the i-1 subscript forces extension traffic.
const char *FuncF = R"(
func @f(%a: arrayref, %n: i32) -> i32 {
  reg %i: i32
  reg %t: i32
  reg %one: i32
  reg %zero: i32
  reg %v: i32
  reg %c: i32
entry:
  %i = copy %n
  %t = const.i32 0
  %one = const.i32 1
  %zero = const.i32 0
  jmp loop
loop:
  %i = sub.w32 %i, %one
  %v = arrayload.i32 %a, %i
  %t = add.w32 %t, %v
  %c = cmp.w32 sgt %i, %zero
  br %c, loop, exit
exit:
  ret %t
}
)";

// A forward masked sum (Figure 3's shape): different counter profile.
const char *FuncG = R"(
func @g(%a: arrayref, %n: i32) -> i32 {
  reg %i: i32
  reg %t: i32
  reg %one: i32
  reg %mask: i32
  reg %v: i32
  reg %c: i32
entry:
  %i = const.i32 0
  %t = const.i32 0
  %one = const.i32 1
  %mask = const.i32 268435455
  jmp loop
loop:
  %v = arrayload.i32 %a, %i
  %v = and.w32 %v, %mask
  %t = add.w32 %t, %v
  %i = add.w32 %i, %one
  %c = cmp.w32 slt %i, %n
  br %c, loop, exit
exit:
  ret %t
}
)";

std::unique_ptr<Module> parseFixture(const std::string &Name,
                                     const std::string &Bodies) {
  ParseResult Parsed = parseModule("module \"" + Name + "\"\n" + Bodies);
  EXPECT_TRUE(Parsed.ok()) << Parsed.Error;
  return std::move(Parsed.M);
}

/// Mode flags are assigned, not accumulated, so they fall outside the
/// additivity invariant.
bool isModeFlag(const StatEntry &E) {
  return E.Name == "pde_variant" || E.Name == "by_frequency";
}

/// A test-only pass that corrupts the IR: it points an operand of the
/// first instruction at a register that does not exist.
class CorruptingPass : public Pass {
public:
  const char *name() const override { return "corruptor"; }
  void run(Function &F, PassContext &) override {
    for (Instruction &I : *F.entryBlock())
      if (I.numOperands() > 0) {
        I.setOperand(0, 999999);
        return;
      }
  }
  bool preservesCFG() const override { return true; }
};

/// A test-only pass that silently inserts a sign extension without
/// declaring mayAddExtensions() — the census check must flag it.
class SneakySextPass : public Pass {
public:
  const char *name() const override { return "sneaky-sext"; }
  void run(Function &F, PassContext &) override {
    for (Instruction &I : *F.entryBlock())
      if (I.hasDest() && I.type() == Type::I32 && !I.isTerminator()) {
        auto Ext = std::make_unique<Instruction>(Opcode::Sext32);
        Ext->setDest(I.dest());
        Ext->addOperand(I.dest());
        F.entryBlock()->insertAfter(&I, std::move(Ext));
        return;
      }
  }
  bool preservesCFG() const override { return true; }
};

} // namespace

TEST(PassStatsTest, CountersAdditiveAcrossFunctions) {
  auto OnlyF = parseFixture("mf", FuncF);
  auto OnlyG = parseFixture("mg", FuncG);
  auto Both = parseFixture("mfg", std::string(FuncF) + FuncG);

  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  InstrumentedPipelineResult RF = runInstrumentedPipeline(*OnlyF, Config);
  InstrumentedPipelineResult RG = runInstrumentedPipeline(*OnlyG, Config);
  InstrumentedPipelineResult RBoth = runInstrumentedPipeline(*Both, Config);

  ASSERT_FALSE(RBoth.Stats.entries().empty());
  for (const StatEntry &E : RBoth.Stats.entries()) {
    if (isModeFlag(E))
      continue;
    EXPECT_EQ(E.Value, RF.Stats.value(E.Pass, E.Name) +
                           RG.Stats.value(E.Pass, E.Name))
        << E.Pass << "/" << E.Name;
  }
  // The parts never out-count the whole (counters are non-negative and
  // registered under the same pass names).
  for (const StatEntry &E : RF.Stats.entries())
    EXPECT_EQ(RBoth.Stats.value(E.Pass, E.Name) >= E.Value || isModeFlag(E),
              true)
        << E.Pass << "/" << E.Name;
}

TEST(PassStatsTest, EliminatedEqualsStaticCensusDelta) {
  auto M = parseFixture("mfg", std::string(FuncF) + FuncG);
  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  PassStats Stats;
  PassContext Ctx(Config, Stats);

  // Everything up to (but excluding) elimination.
  PassManager Front;
  Front.add(createConversion64Pass(Config.Gen));
  Front.add(createGeneralOptsPass());
  Front.add(createDummyInsertionPass());
  Front.add(createInsertionPass(/*UsePDE=*/false));
  Front.add(createOrderDeterminationPass(/*ByFrequency=*/true));
  ASSERT_TRUE(Front.run(*M, Ctx));
  uint64_t Before = countStaticExtensions(*M).totalSext();

  // Elimination alone, sharing the context (inserted set + order).
  PassManager Back;
  Back.add(createEliminationPass());
  ASSERT_TRUE(Back.run(*M, Ctx));
  uint64_t After = countStaticExtensions(*M).totalSext();

  uint64_t Eliminated = Stats.value("elimination", "sext_eliminated");
  EXPECT_GT(Eliminated, 0u);
  EXPECT_EQ(Before - After, Eliminated);
}

TEST(VerifyEachTest, NamesTheCorruptingPass) {
  auto M = parseFixture("mf", FuncF);
  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  PassStats Stats;
  PassContext Ctx(Config, Stats);

  PassManagerOptions Options;
  Options.VerifyEach = true;
  PassManager PM(Options);
  PM.add(createConversion64Pass(Config.Gen));
  PM.add(std::make_unique<CorruptingPass>());
  PM.add(createGeneralOptsPass());

  EXPECT_FALSE(PM.run(*M, Ctx));
  ASSERT_NE(PM.failure(), nullptr);
  EXPECT_EQ(PM.failure()->PassName, "corruptor");
  ASSERT_FALSE(PM.failure()->Problems.empty());
}

TEST(VerifyEachTest, CensusRegressionNamesTheOffendingPass) {
  auto M = parseFixture("mf", FuncF);
  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  PassStats Stats;
  PassContext Ctx(Config, Stats);

  PassManagerOptions Options;
  Options.VerifyEach = true;
  PassManager PM(Options);
  PM.add(createConversion64Pass(Config.Gen));
  PM.add(std::make_unique<SneakySextPass>());

  EXPECT_FALSE(PM.run(*M, Ctx));
  ASSERT_NE(PM.failure(), nullptr);
  EXPECT_EQ(PM.failure()->PassName, "sneaky-sext");
  ASSERT_FALSE(PM.failure()->Problems.empty());
  EXPECT_NE(PM.failure()->Problems.front().find("census"), std::string::npos);
}

TEST(VerifyEachTest, CleanPipelinePasses) {
  auto M = parseFixture("mfg", std::string(FuncF) + FuncG);
  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  PassManagerOptions Options;
  Options.VerifyEach = true;
  InstrumentedPipelineResult R = runInstrumentedPipeline(*M, Config, Options);
  EXPECT_TRUE(R.Ok);
  EXPECT_TRUE(R.FailedPass.empty());
}

TEST(PassTimingTest, TimersCoverThePipelineInOrder) {
  auto M = parseFixture("mf", FuncF);
  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  InstrumentedPipelineResult R = runInstrumentedPipeline(*M, Config);

  std::vector<std::string> Names;
  for (const PassTiming &T : R.Timings) {
    Names.push_back(T.Name);
    EXPECT_EQ(T.Runs, 1u) << T.Name;
  }
  std::vector<std::string> Expected = {"conversion64",    "general-opts",
                                       "dummy-insertion", "insertion",
                                       "order-determination", "elimination"};
  EXPECT_EQ(Names, Expected);

  // Baseline runs no sign-ext engine at all.
  auto M2 = parseFixture("mf", FuncF);
  InstrumentedPipelineResult R2 = runInstrumentedPipeline(
      *M2, PipelineConfig::forVariant(Variant::Baseline));
  for (const PassTiming &T : R2.Timings)
    EXPECT_NE(T.Group, Pass::Group::SignExt) << T.Name;
}

TEST(PassTimingTest, SnapshotsFollowThePassSequence) {
  auto M = parseFixture("mf", FuncF);
  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  PassManagerOptions Options;
  Options.CaptureSnapshots = true;
  InstrumentedPipelineResult R = runInstrumentedPipeline(*M, Config, Options);

  ASSERT_EQ(R.Snapshots.size(), R.Timings.size());
  for (size_t Index = 0; Index < R.Snapshots.size(); ++Index) {
    EXPECT_EQ(R.Snapshots[Index].PassName, R.Timings[Index].Name);
    // Every snapshot is parseable IR.
    ParseResult Reparsed = parseModule(R.Snapshots[Index].IR);
    EXPECT_TRUE(Reparsed.ok())
        << "snapshot after " << R.Snapshots[Index].PassName << ": "
        << Reparsed.Error;
  }
  // The final snapshot is the final module.
  EXPECT_EQ(R.Snapshots.back().IR, printModule(*M));
}

TEST(ReportTest, JsonCarriesTheLockedSchema) {
  auto M = parseFixture("mf", FuncF);
  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  InstrumentedPipelineResult R = runInstrumentedPipeline(*M, Config);

  StatsReportInfo Info;
  Info.ModuleName = "mf";
  Info.VariantLabel = variantName(Variant::All);
  Info.TargetName = Config.Target->name();
  Info.ChainCreationNanos = R.ChainCreationNanos;
  std::string Json = statsReportJson(R.Stats, R.Timings, Info);

  EXPECT_NE(Json.find("\"schema\": \"sxe.pass-stats.v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"passes\": ["), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"elimination\""), std::string::npos);
  EXPECT_NE(Json.find("\"sext_eliminated\":"), std::string::npos);
  EXPECT_NE(Json.find("\"totals\": {"), std::string::npos);

  // Deterministic mode keeps the timing keys but zeroes the values.
  Info.IncludeTimings = false;
  std::string Golden = statsReportJson(R.Stats, R.Timings, Info);
  EXPECT_NE(Golden.find("\"wall_ns\": 0"), std::string::npos);
  EXPECT_NE(Golden.find("\"chain_creation_ns\": 0"), std::string::npos);
  EXPECT_EQ(Golden.find("\"wall_ns\": 1"), std::string::npos);
}

TEST(ReportTest, LegacyProjectionAgreesWithCounters) {
  auto M = parseFixture("mfg", std::string(FuncF) + FuncG);
  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  InstrumentedPipelineResult R = runInstrumentedPipeline(*M, Config);

  EXPECT_EQ(R.Legacy.ExtensionsGenerated,
            R.Stats.value("conversion64", "sext_generated"));
  EXPECT_EQ(R.Legacy.ExtensionsInserted,
            R.Stats.value("insertion", "sext_inserted"));
  EXPECT_EQ(R.Legacy.DummiesInserted,
            R.Stats.value("dummy-insertion", "dummy_added"));
  EXPECT_EQ(R.Legacy.ExtensionsEliminated, R.Stats.total("sext_eliminated"));
  EXPECT_EQ(R.Legacy.DummiesRemoved,
            R.Stats.value("elimination", "dummy_removed"));
  EXPECT_EQ(R.Legacy.SubscriptTheorem4,
            R.Stats.value("elimination", "theorem4_fired"));
}
