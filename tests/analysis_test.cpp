//===- tests/analysis_test.cpp - CFG/dominators/loops/chains tests --------------===//

#include "analysis/BlockFrequency.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/UseDefChains.h"
#include "ir/IRBuilder.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace sxe;

namespace {

/// Diamond with a loop around it:
/// entry -> head; head -> (body | exit); body -> (left | right) -> join ->
/// head.
struct LoopDiamond {
  std::unique_ptr<Module> M;
  Function *F;
  BasicBlock *Entry, *Head, *Body, *Left, *Right, *Join, *Exit;
  Reg I, N;

  LoopDiamond() {
    M = std::make_unique<Module>("m");
    F = M->createFunction("f", Type::I32);
    N = F->addParam(Type::I32, "n");
    IRBuilder B(F);
    Entry = B.startBlock("entry");
    Reg Zero = B.constI32(0);
    I = F->newReg(Type::I32, "i");
    B.copyTo(I, Zero);
    Head = F->createBlock("head");
    Body = F->createBlock("body");
    Left = F->createBlock("left");
    Right = F->createBlock("right");
    Join = F->createBlock("join");
    Exit = F->createBlock("exit");
    B.jmp(Head);
    B.setBlock(Head);
    Reg C = B.cmp32(CmpPred::SLT, I, N);
    B.br(C, Body, Exit);
    B.setBlock(Body);
    Reg One = B.constI32(1);
    Reg Odd = B.and32(I, One);
    Reg IsOdd = B.cmp32(CmpPred::NE, Odd, B.constI32(0));
    B.br(IsOdd, Left, Right);
    B.setBlock(Left);
    B.binopTo(I, Opcode::Add, Width::W32, I, One);
    B.jmp(Join);
    B.setBlock(Right);
    Reg Two = B.constI32(2);
    B.binopTo(I, Opcode::Add, Width::W32, I, Two);
    B.jmp(Join);
    B.setBlock(Join);
    B.jmp(Head);
    B.setBlock(Exit);
    B.ret(I);
  }
};

TEST(CFGTest, OrdersAndEdges) {
  LoopDiamond D;
  CFG Cfg(*D.F);

  EXPECT_EQ(Cfg.reversePostOrder().front(), D.Entry);
  EXPECT_TRUE(Cfg.isReachable(D.Exit));
  EXPECT_EQ(Cfg.successors(D.Body).size(), 2u);
  EXPECT_EQ(Cfg.predecessors(D.Join).size(), 2u);
  EXPECT_EQ(Cfg.predecessors(D.Head).size(), 2u); // entry + join.

  // RPO is topological over forward edges: head before body before join.
  EXPECT_LT(Cfg.rpoIndex(D.Head), Cfg.rpoIndex(D.Body));
  EXPECT_LT(Cfg.rpoIndex(D.Body), Cfg.rpoIndex(D.Join));
}

TEST(CFGTest, UnreachableBlockDetected) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  IRBuilder B(F);
  B.startBlock("entry");
  B.retVoid();
  BasicBlock *Orphan = F->createBlock("orphan");
  B.setBlock(Orphan);
  B.retVoid();
  CFG Cfg(*F);
  EXPECT_FALSE(Cfg.isReachable(Orphan));
  EXPECT_EQ(Cfg.rpoIndex(Orphan), ~0u);
}

TEST(DominatorsTest, DiamondAndLoop) {
  LoopDiamond D;
  CFG Cfg(*D.F);
  Dominators Dom(Cfg);

  EXPECT_TRUE(Dom.dominates(D.Entry, D.Exit));
  EXPECT_TRUE(Dom.dominates(D.Head, D.Join));
  EXPECT_TRUE(Dom.dominates(D.Body, D.Left));
  EXPECT_FALSE(Dom.dominates(D.Left, D.Join));
  EXPECT_FALSE(Dom.dominates(D.Right, D.Join));
  EXPECT_EQ(Dom.immediateDominator(D.Join), D.Body);
  EXPECT_EQ(Dom.immediateDominator(D.Head), D.Entry);
  EXPECT_TRUE(Dom.dominates(D.Head, D.Head));
}

TEST(LoopInfoTest, FindsTheNaturalLoop) {
  LoopDiamond D;
  CFG Cfg(*D.F);
  Dominators Dom(Cfg);
  LoopInfo Loops(Cfg, Dom);

  ASSERT_TRUE(Loops.hasLoops());
  ASSERT_EQ(Loops.loops().size(), 1u);
  const Loop &L = *Loops.loops().front();
  EXPECT_EQ(L.Header, D.Head);
  EXPECT_TRUE(L.contains(D.Body));
  EXPECT_TRUE(L.contains(D.Left));
  EXPECT_TRUE(L.contains(D.Join));
  EXPECT_FALSE(L.contains(D.Entry));
  EXPECT_FALSE(L.contains(D.Exit));
  EXPECT_EQ(Loops.loopDepth(D.Body), 1u);
  EXPECT_EQ(Loops.loopDepth(D.Exit), 0u);
}

TEST(LoopInfoTest, NestedLoopsHaveDepths) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  Reg N = F->addParam(Type::I32, "n");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg I = F->newReg(Type::I32, "i");
  Reg J = F->newReg(Type::I32, "j");
  B.copyTo(I, Zero);
  BasicBlock *OuterHead = F->createBlock("oh");
  BasicBlock *InnerPre = F->createBlock("ip");
  BasicBlock *InnerHead = F->createBlock("ih");
  BasicBlock *InnerBody = F->createBlock("ib");
  BasicBlock *OuterLatch = F->createBlock("ol");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(OuterHead);
  B.setBlock(OuterHead);
  Reg C1 = B.cmp32(CmpPred::SLT, I, N);
  B.br(C1, InnerPre, Exit);
  B.setBlock(InnerPre);
  B.copyTo(J, Zero);
  B.jmp(InnerHead);
  B.setBlock(InnerHead);
  Reg C2 = B.cmp32(CmpPred::SLT, J, N);
  B.br(C2, InnerBody, OuterLatch);
  B.setBlock(InnerBody);
  Reg One = B.constI32(1);
  B.binopTo(J, Opcode::Add, Width::W32, J, One);
  B.jmp(InnerHead);
  B.setBlock(OuterLatch);
  Reg One2 = B.constI32(1);
  B.binopTo(I, Opcode::Add, Width::W32, I, One2);
  B.jmp(OuterHead);
  B.setBlock(Exit);
  B.retVoid();

  CFG Cfg(*F);
  Dominators Dom(Cfg);
  LoopInfo Loops(Cfg, Dom);
  EXPECT_EQ(Loops.loops().size(), 2u);
  EXPECT_EQ(Loops.loopDepth(InnerBody), 2u);
  EXPECT_EQ(Loops.loopDepth(OuterLatch), 1u);
  EXPECT_EQ(Loops.loopDepth(Exit), 0u);
}

TEST(BlockFrequencyTest, LoopsAreHotterAndProfilesSkew) {
  LoopDiamond D;
  CFG Cfg(*D.F);
  Dominators Dom(Cfg);
  LoopInfo Loops(Cfg, Dom);

  BlockFrequency Static(Cfg, Loops, nullptr);
  EXPECT_GT(Static.frequency(D.Body), Static.frequency(D.Entry));
  EXPECT_GT(Static.frequency(D.Body), Static.frequency(D.Exit));
  // Without a profile, the two arms split 50/50.
  EXPECT_DOUBLE_EQ(Static.frequency(D.Left), Static.frequency(D.Right));

  // A profile that takes the left arm 90% of the time skews them.
  ProfileInfo Profile;
  const Instruction *Branch = D.Body->terminator();
  for (int K = 0; K < 90; ++K)
    Profile.recordBranch(Branch, true);
  for (int K = 0; K < 10; ++K)
    Profile.recordBranch(Branch, false);
  BlockFrequency Profiled(Cfg, Loops, &Profile);
  EXPECT_GT(Profiled.frequency(D.Left), Profiled.frequency(D.Right));
}

TEST(UseDefChainsTest, ReachingDefsThroughDiamond) {
  LoopDiamond D;
  CFG Cfg(*D.F);
  UseDefChains Chains(*D.F, Cfg);

  // The ret's operand (i) is reached by both arm definitions and the
  // entry copy, but not by the entry pseudo-def (copy dominates).
  const Instruction *Ret = D.Exit->terminator();
  const auto &Defs = Chains.defsOf(Ret, 0);
  EXPECT_EQ(Defs.size(), 3u);
  EXPECT_FALSE(Chains.entryDefReaches(Ret, 0));

  // The left-arm add's i operand is reached by entry copy and both arms
  // (around the loop).
  const Instruction *LeftAdd = nullptr;
  for (Instruction &I : *D.Left)
    if (I.opcode() == Opcode::Add)
      LeftAdd = &I;
  ASSERT_NE(LeftAdd, nullptr);
  EXPECT_EQ(Chains.defsOf(LeftAdd, 0).size(), 3u);
}

TEST(UseDefChainsTest, DefUsesAreInverse) {
  LoopDiamond D;
  CFG Cfg(*D.F);
  UseDefChains Chains(*D.F, Cfg);

  for (const auto &BB : D.F->blocks()) {
    for (Instruction &I : *BB) {
      for (unsigned Op = 0; Op < I.numOperands(); ++Op) {
        for (const Instruction *Def : Chains.defsOf(&I, Op)) {
          if (!Def)
            continue;
          const auto &Uses = Chains.usesOf(Def);
          bool Found = std::any_of(
              Uses.begin(), Uses.end(), [&](const UseRef &U) {
                return U.User == &I && U.OpIndex == Op;
              });
          EXPECT_TRUE(Found);
        }
      }
    }
  }
}

TEST(UseDefChainsTest, SpliceOutDefIsExact) {
  // x defined once, extended, then used twice: removing the extension
  // rewires both uses to the original definition.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg One = B.constI32(1);
  Reg X = B.add32(P, One, "x");
  Instruction *Ext = B.sextTo(X, 32, X);
  Reg U1 = B.add32(X, One, "u1");
  Reg U2 = B.add32(X, X, "u2");
  Reg Sum = B.add32(U1, U2);
  B.ret(Sum);

  CFG Cfg(*F);
  UseDefChains Chains(*F, Cfg);

  Instruction *XDef = nullptr;
  Instruction *U2Def = nullptr;
  for (Instruction &I : *F->entryBlock()) {
    if (I.hasDest() && I.dest() == X && I.opcode() == Opcode::Add)
      XDef = &I;
    if (I.hasDest() && I.dest() == U2)
      U2Def = &I;
  }
  ASSERT_NE(XDef, nullptr);
  ASSERT_NE(U2Def, nullptr);

  // Before: U2's operands are reached by the extension.
  EXPECT_EQ(Chains.defsOf(U2Def, 0), std::vector<Instruction *>{Ext});

  Chains.spliceOutDef(Ext);
  F->entryBlock()->erase(Ext);

  EXPECT_EQ(Chains.defsOf(U2Def, 0), std::vector<Instruction *>{XDef});
  EXPECT_EQ(Chains.defsOf(U2Def, 1), std::vector<Instruction *>{XDef});
  // And the DU side: XDef now reaches both operand uses of U2Def.
  unsigned Hits = 0;
  for (const UseRef &U : Chains.usesOf(XDef))
    Hits += U.User == U2Def ? 1 : 0;
  EXPECT_EQ(Hits, 2u);
}

} // namespace
