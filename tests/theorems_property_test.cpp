//===- tests/theorems_property_test.cpp - Theorems 1-4 as math -----------------===//
//
// Section 3's theorems, checked as statements about 64-bit machine
// arithmetic over randomized operands: if the hypotheses hold and the
// bounds check passes on the lower 32 bits, the full 64-bit register used
// for the effective address equals the checked index.
//
// Each theorem runs as a parameterized sweep over seeds; each seed drives
// thousands of sampled operand combinations, biased toward the int32
// boundary values where sign-extension bugs live.
//
//===-----------------------------------------------------------------------------===//

#include "support/RNG.h"

#include <gtest/gtest.h>

namespace {

constexpr int64_t Int32Min = INT32_MIN;
constexpr int64_t Int32Max = INT32_MAX;

/// Samples an "interesting" signed 32-bit value: boundaries, small values,
/// or uniform.
int32_t sampleInt32(sxe::RNG &R) {
  switch (R.nextBelow(8)) {
  case 0:
    return 0;
  case 1:
    return -1;
  case 2:
    return INT32_MIN;
  case 3:
    return INT32_MAX;
  case 4:
    return static_cast<int32_t>(R.nextInRange(-64, 64));
  case 5:
    return static_cast<int32_t>(INT32_MAX - R.nextBelow(64));
  case 6:
    return static_cast<int32_t>(INT32_MIN + R.nextBelow(64));
  default:
    return static_cast<int32_t>(R.next());
  }
}

uint64_t signExtended(int32_t Value) {
  return static_cast<uint64_t>(static_cast<int64_t>(Value));
}

/// The bounds check: unsigned 32-bit compare of the LOWER register half.
bool boundsCheckPasses(uint64_t Register, uint32_t Len) {
  return static_cast<uint32_t>(Register) < Len;
}

/// The wild-address predicate: the full register must equal the checked
/// non-negative index.
bool addressCorrect(uint64_t Register) {
  return Register == static_cast<uint64_t>(static_cast<uint32_t>(Register));
}

class TheoremSweep : public ::testing::TestWithParam<uint64_t> {};

// Theorem 1: upper 32 bits zero + LS => no extension needed.
TEST_P(TheoremSweep, Theorem1UpperZero) {
  sxe::RNG R(GetParam());
  for (int Trial = 0; Trial < 20000; ++Trial) {
    uint32_t Low = static_cast<uint32_t>(R.next());
    uint64_t Register = Low; // Upper 32 bits zero (e.g. IA64 zext load).
    uint32_t Len = static_cast<uint32_t>(R.nextBelow(Int32Max)) + 1;
    if (!boundsCheckPasses(Register, Len))
      continue;
    ASSERT_TRUE(addressCorrect(Register))
        << "low=" << Low << " len=" << Len;
  }
}

// Theorem 2: i, j sign-extended, one of them >= 0, LS(i+j) => the 64-bit
// sum addresses the checked element.
TEST_P(TheoremSweep, Theorem2AddNonNegativePart) {
  sxe::RNG R(GetParam());
  for (int Trial = 0; Trial < 20000; ++Trial) {
    int32_t I = sampleInt32(R);
    int32_t J = sampleInt32(R);
    if (I < 0 && J < 0)
      continue; // Hypothesis: one part non-negative.
    uint64_t Sum = signExtended(I) + signExtended(J); // 64-bit machine add.
    uint32_t Len = static_cast<uint32_t>(R.nextBelow(Int32Max)) + 1;
    if (!boundsCheckPasses(Sum, Len))
      continue;
    ASSERT_TRUE(addressCorrect(Sum)) << "i=" << I << " j=" << J;
  }
}

// Theorem 3: upper half of i zero, 0 <= j <= 0x7fffffff, LS(i-j).
TEST_P(TheoremSweep, Theorem3SubFromZeroUpper) {
  sxe::RNG R(GetParam());
  for (int Trial = 0; Trial < 20000; ++Trial) {
    uint64_t I = static_cast<uint32_t>(R.next()); // Upper zero.
    int32_t J = sampleInt32(R);
    if (J < 0)
      continue;
    uint64_t Diff = I - signExtended(J); // 64-bit machine subtract.
    uint32_t Len = static_cast<uint32_t>(R.nextBelow(Int32Max)) + 1;
    if (!boundsCheckPasses(Diff, Len))
      continue;
    ASSERT_TRUE(addressCorrect(Diff))
        << "i=" << I << " j=" << J << " len=" << Len;
  }
}

// Theorem 4: i, j sign-extended, one part >= (maxlen-1)-0x7fffffff, and
// the bounds check is against a length <= maxlen.
TEST_P(TheoremSweep, Theorem4BoundedPart) {
  sxe::RNG R(GetParam());
  for (int Trial = 0; Trial < 20000; ++Trial) {
    uint32_t MaxLen =
        static_cast<uint32_t>(R.nextBelow(Int32Max)) + 1;
    int64_t LoBound = static_cast<int64_t>(MaxLen) - 1 - Int32Max;
    int32_t I = sampleInt32(R);
    int32_t J = sampleInt32(R);
    if (I < LoBound && J < LoBound)
      continue; // Hypothesis: one part bounded below.
    uint64_t Sum = signExtended(I) + signExtended(J);
    uint32_t Len = static_cast<uint32_t>(R.nextBelow(MaxLen)) + 1;
    if (Len > MaxLen)
      continue;
    if (!boundsCheckPasses(Sum, Len))
      continue;
    ASSERT_TRUE(addressCorrect(Sum))
        << "i=" << I << " j=" << J << " maxlen=" << MaxLen;
  }
}

// The NEGATIVE result implied by Figure 10: without Theorem 4's bound,
// two sign-extended parts can pass the bounds check while the full sum
// addresses wild memory — i.e. the hypotheses are not vacuous.
TEST_P(TheoremSweep, UnboundedPartsCanGoWild) {
  sxe::RNG R(GetParam());
  bool FoundWild = false;
  for (int Trial = 0; Trial < 200000 && !FoundWild; ++Trial) {
    // Both parts very negative: sum wraps into a valid-looking low half.
    int32_t I = static_cast<int32_t>(Int32Min + R.nextBelow(1000));
    int32_t J = static_cast<int32_t>(Int32Min + R.nextBelow(1000));
    uint64_t Sum = signExtended(I) + signExtended(J);
    if (boundsCheckPasses(Sum, Int32Max) && !addressCorrect(Sum))
      FoundWild = true;
  }
  EXPECT_TRUE(FoundWild)
      << "expected a wild address without the Theorem 4 bound";
}

// Bitwise operations preserve a replicated sign: the AnalyzeDEF Case 2
// fact behind defPropagatesExtension.
TEST_P(TheoremSweep, BitwiseOpsPreserveExtension) {
  sxe::RNG R(GetParam());
  for (int Trial = 0; Trial < 20000; ++Trial) {
    uint64_t A = signExtended(sampleInt32(R));
    uint64_t B = signExtended(sampleInt32(R));
    auto IsExt = [](uint64_t V) {
      return V == signExtended(static_cast<int32_t>(V));
    };
    ASSERT_TRUE(IsExt(A & B));
    ASSERT_TRUE(IsExt(A | B));
    ASSERT_TRUE(IsExt(A ^ B));
    ASSERT_TRUE(IsExt(~A));
  }
}

// The AND-with-positive fact (the paper's AnalyzeDEF Case 1 example):
// garbage-upper AND zero-upper-nonnegative is sign-extended.
TEST_P(TheoremSweep, AndWithPositiveIsExtended) {
  sxe::RNG R(GetParam());
  for (int Trial = 0; Trial < 20000; ++Trial) {
    uint64_t X = R.next(); // Arbitrary garbage register.
    uint32_t M = static_cast<uint32_t>(R.nextBelow(Int32Max)); // [0, 2^31).
    uint64_t Result = X & static_cast<uint64_t>(M);
    ASSERT_EQ(Result, signExtended(static_cast<int32_t>(Result)));
    ASSERT_LE(Result, static_cast<uint64_t>(M));
  }
}

// The W32 logical-shift lowering (unsigned extract) produces zero-upper
// results regardless of input garbage — the Shr fact in defUpperZero.
TEST_P(TheoremSweep, ShrExtractIsZeroUpper) {
  sxe::RNG R(GetParam());
  for (int Trial = 0; Trial < 20000; ++Trial) {
    uint64_t X = R.next();
    unsigned Count = static_cast<unsigned>(R.nextBelow(32));
    uint64_t Result = static_cast<uint64_t>(static_cast<uint32_t>(X)) >>
                      Count;
    ASSERT_EQ(Result >> 32, 0u);
    if (Count >= 1) {
      ASSERT_EQ(Result, signExtended(static_cast<int32_t>(Result)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
