//===- tests/obs_test.cpp - Tracing, metrics, remarks ---------------------------===//
//
// Locks the src/obs/ contracts:
//
//   - Histogram bucket boundaries: an observation equal to a bound lands
//     in that bound's bucket (Prometheus `le` semantics), above the last
//     bound in the overflow bucket;
//   - MetricsRegistry is safe under concurrent observation and merges
//     per-thread registries like PassStats (counters/histograms add,
//     gauges max) — the TSan CI job runs this suite;
//   - TraceCollector's export is well-formed JSON (parsed back with
//     support/Json), carries the sxe.trace.v1 schema tag, and an
//     8-worker compile-service batch produces at least two thread
//     tracks;
//   - the remark stream of a parallel (jobs=8) compile-service batch is
//     byte-identical to the serial (jobs=0) reference, including on
//     cache hits (remarks live in the cached artifact);
//   - the Prometheus exposition carries the compile-latency histogram
//     with cumulative buckets, +Inf, _sum, and _count;
//   - trace identity: minted ids are non-zero/distinct and the 16-digit
//     hex wire form round-trips;
//   - the structured event log exports schema-tagged, parseable
//     sxe.events.v1 JSONL and mirrors every append into the flight
//     recorder;
//   - the flight recorder: the ring wraps keeping exactly the most recent
//     capacity() records, hostile names are sanitized at record time, and
//     a real SIGSEGV (forked child) leaves a parseable sxe.flight.v1 dump
//     while the child still dies with the original signal;
//   - histogram latency exemplars surface in the JSON export only, and
//     registerBuildInfoMetrics exposes sxe_build_info / sxe_uptime_seconds
//     in both export formats.
//
//===-----------------------------------------------------------------------------===//

#include "jit/CompileService.h"
#include "obs/EventLog.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "parser/Parser.h"
#include "obs/Remarks.h"
#include "obs/Trace.h"
#include "obs/TraceContext.h"
#include "pm/InstrumentedPipeline.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <csignal>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

using namespace sxe;

namespace {

std::string loadCorpusSource(const std::string &Name) {
  std::string Path =
      std::string(SXE_SOURCE_DIR) + "/tests/corpus/" + Name + ".sxir";
  std::ifstream In(Path);
  EXPECT_TRUE(static_cast<bool>(In)) << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

const char *const CorpusNames[] = {"generated_small", "generated_medium",
                                   "generated_large"};

/// Runs the pinned corpus through a service and returns the remark
/// streams concatenated in submission order.
std::string batchRemarks(unsigned Jobs, CodeCache *Cache) {
  CompileServiceOptions Options;
  Options.Jobs = Jobs;
  Options.Cache = Cache;
  Options.CollectRemarks = true;
  CompileService Service(Options);
  std::vector<std::future<CompileResult>> Futures;
  for (const char *Name : CorpusNames) {
    CompileRequest Request;
    Request.Name = Name;
    Request.Source = loadCorpusSource(Name);
    Request.Config = PipelineConfig::forVariant(Variant::All);
    Request.Hotness = static_cast<double>(Request.Source.size());
    Futures.push_back(Service.enqueue(std::move(Request)));
  }
  std::vector<Remark> All;
  for (auto &Future : Futures) {
    CompileResult Result = Future.get();
    EXPECT_TRUE(Result.Ok) << Result.Error;
    if (Result.Ok)
      All.insert(All.end(), Result.Code->Remarks.begin(),
                 Result.Code->Remarks.end());
  }
  return remarksToJsonl(All);
}

// --- Histograms ---------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram H({1.0, 2.0, 4.0});
  H.observe(0.5);  // <= 1.0
  H.observe(1.0);  // == bound: still bucket 0 (le semantics)
  H.observe(1.5);  // <= 2.0
  H.observe(4.0);  // == last bound
  H.observe(99.0); // overflow
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u); // +Inf
  EXPECT_EQ(H.count(), 5u);
  EXPECT_NEAR(H.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 99.0, 1e-6);
}

TEST(Histogram, DefaultLatencyBoundsAreAscending) {
  std::vector<double> Bounds = defaultLatencyBucketBounds();
  ASSERT_GE(Bounds.size(), 4u);
  for (size_t I = 1; I < Bounds.size(); ++I)
    EXPECT_LT(Bounds[I - 1], Bounds[I]);
}

TEST(Metrics, CountersAndGauges) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("sxe_events_total", "events");
  C.inc();
  C.inc(4);
  EXPECT_EQ(C.value(), 5u);
  // Re-registration returns the same instrument.
  EXPECT_EQ(&Reg.counter("sxe_events_total"), &C);

  Gauge &G = Reg.gauge("sxe_depth", "depth");
  G.set(7);
  G.add(-2);
  EXPECT_EQ(G.value(), 5);
}

TEST(Metrics, ConcurrentObservationAndMerge) {
  // Hot path under contention (the TSan job watches this), then the
  // per-thread-registry merge pattern on top.
  MetricsRegistry Shared;
  Counter &C = Shared.counter("sxe_ops_total");
  Histogram &H = Shared.histogram("sxe_op_seconds", "", {0.5, 1.0});
  constexpr unsigned Threads = 8, PerThread = 1000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&C, &H, T] {
      for (unsigned I = 0; I < PerThread; ++I) {
        C.inc();
        H.observe(T % 2 ? 0.25 : 2.0);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(H.count(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(H.bucketCount(0), uint64_t(Threads) / 2 * PerThread);
  EXPECT_EQ(H.bucketCount(2), uint64_t(Threads) / 2 * PerThread);

  MetricsRegistry PerThreadReg;
  PerThreadReg.counter("sxe_ops_total").inc(10);
  PerThreadReg.gauge("sxe_peak").set(3);
  PerThreadReg.histogram("sxe_op_seconds", "", {0.5, 1.0}).observe(0.1);
  Shared.gauge("sxe_peak").set(9);
  Shared.merge(PerThreadReg);
  EXPECT_EQ(Shared.counter("sxe_ops_total").value(),
            uint64_t(Threads) * PerThread + 10);
  EXPECT_EQ(Shared.gauge("sxe_peak").value(), 9); // max, not sum
  EXPECT_EQ(Shared.histogram("sxe_op_seconds").count(),
            uint64_t(Threads) * PerThread + 1);
}

TEST(Metrics, JsonExportParsesBackWithSchema) {
  MetricsRegistry Reg;
  Reg.counter("sxe_compiles_total", "runs").inc(3);
  Reg.gauge("sxe_queue_depth").set(2);
  Reg.histogram("sxe_compile_latency_seconds", "latency", {0.1, 1.0})
      .observe(0.05);
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Reg.toJson(), Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("schema"), kMetricsSchema);
  const JsonValue *Counters = Doc.find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_TRUE(Counters->isObject());
  const JsonValue *Compiles = Counters->find("sxe_compiles_total");
  ASSERT_NE(Compiles, nullptr);
  EXPECT_EQ(Compiles->numberValue(), 3.0);
  const JsonValue *Hists = Doc.find("histograms");
  ASSERT_NE(Hists, nullptr);
  const JsonValue *Latency = Hists->find("sxe_compile_latency_seconds");
  ASSERT_NE(Latency, nullptr);
  const JsonValue *Buckets = Latency->find("buckets");
  ASSERT_NE(Buckets, nullptr);
  ASSERT_TRUE(Buckets->isArray());
  EXPECT_EQ(Buckets->array().size(), 2u);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry Reg;
  Reg.counter("sxe_compiles_total", "Pipeline runs").inc(2);
  Histogram &H =
      Reg.histogram("sxe_compile_latency_seconds", "latency", {0.1, 1.0});
  H.observe(0.05);
  H.observe(0.5);
  H.observe(30.0);
  std::string Text = Reg.toPrometheus();
  EXPECT_NE(Text.find("# HELP sxe_compiles_total Pipeline runs"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE sxe_compiles_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compiles_total 2"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE sxe_compile_latency_seconds histogram"),
            std::string::npos);
  // Buckets are cumulative.
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_count 3"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_sum"), std::string::npos);
}

// --- Traces -------------------------------------------------------------------

TEST(Trace, ExportIsWellFormedAndSchemaTagged) {
  TraceCollector Trace;
  {
    TraceSpan Span(&Trace, "compile", "service");
    Span.arg("module", "m \"quoted\"\n");
  }
  uint64_t Now = wallNowNanos();
  Trace.addSpan("pass", "pass", Now, Now + 1500);
  Trace.nameThread("main");
  EXPECT_EQ(Trace.size(), 2u);
  EXPECT_EQ(Trace.threadTracks(), 1u);

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Trace.toJson(), Doc, Error)) << Error;
  const JsonValue *Other = Doc.find("otherData");
  ASSERT_NE(Other, nullptr);
  EXPECT_EQ(Other->stringField("schema"), kTraceSchema);
  const JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  // 2 "X" spans + 1 thread_name metadata event.
  ASSERT_EQ(Events->array().size(), 3u);
  unsigned Complete = 0, Meta = 0;
  for (const JsonValue &E : Events->array()) {
    if (E.stringField("ph") == "X")
      ++Complete;
    if (E.stringField("ph") == "M")
      ++Meta;
  }
  EXPECT_EQ(Complete, 2u);
  EXPECT_EQ(Meta, 1u);
}

TEST(Trace, NullCollectorSpanIsDisabled) {
  TraceSpan Span(nullptr, "noop", "service");
  Span.arg("ignored", "x"); // Must not crash.
}

TEST(Trace, PipelineRunEmitsOnePassSpanPerPass) {
  ParseResult Parsed = parseModule(loadCorpusSource("generated_small"));
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  TraceCollector Trace;
  PassManagerOptions Options;
  Options.Trace = &Trace;
  InstrumentedPipelineResult Result = runInstrumentedPipeline(
      *Parsed.M, PipelineConfig::forVariant(Variant::All), Options);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Trace.size(), Result.Timings.size());
}

TEST(Trace, EightWorkerBatchHasMultipleThreadTracks) {
  TraceCollector Trace;
  MetricsRegistry Metrics;
  CompileServiceOptions Options;
  Options.Jobs = 8;
  Options.Trace = &Trace;
  Options.Metrics = &Metrics;
  CompileService Service(Options);
  std::vector<std::future<CompileResult>> Futures;
  // Enough jobs that at least two workers get one even under unlucky
  // scheduling: each worker blocks in a full pipeline run per job.
  for (unsigned Round = 0; Round < 8; ++Round)
    for (const char *Name : CorpusNames) {
      CompileRequest Request;
      Request.Name = std::string(Name) + "#" + std::to_string(Round);
      Request.Source = loadCorpusSource(Name);
      Request.Config = PipelineConfig::forVariant(Variant::All);
      Futures.push_back(Service.enqueue(std::move(Request)));
    }
  for (auto &Future : Futures)
    EXPECT_TRUE(Future.get().Ok);
  Service.shutdown();

  EXPECT_GE(Trace.threadTracks(), 2u);
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Trace.toJson(), Doc, Error)) << Error;
  EXPECT_EQ(Metrics.counter("sxe_compiles_total").value(), 24u);
  EXPECT_EQ(Metrics.histogram("sxe_compile_latency_seconds").count(), 24u);
}

// --- Remarks ------------------------------------------------------------------

TEST(Remarks, SerializationOmitsDefaultsAndEscapes) {
  Remark R;
  R.Pass = "elimination";
  R.Function = "f\"1\"";
  R.InstId = 7;
  R.Op = "sext32";
  R.Decision = RemarkDecision::Eliminated;
  R.Analysis = RemarkAnalysis::Use;
  std::string Line = remarkToJsonLine(R);
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Line, Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("function"), "f\"1\"");
  EXPECT_EQ(Doc.stringField("decision"), "eliminated");
  EXPECT_EQ(Doc.stringField("analysis"), "use");
  EXPECT_EQ(Doc.find("count"), nullptr);    // Count == 1 omitted.
  EXPECT_EQ(Doc.find("theorem1"), nullptr); // zero omitted
  std::string Header = remarksHeaderLine();
  ASSERT_TRUE(parseJson(Header, Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("schema"), kRemarksSchema);
}

TEST(Remarks, ParallelBatchMatchesSerialByteForByte) {
  std::string Serial = batchRemarks(/*Jobs=*/0, /*Cache=*/nullptr);
  std::string Parallel = batchRemarks(/*Jobs=*/8, /*Cache=*/nullptr);
  EXPECT_FALSE(Serial.empty());
  EXPECT_EQ(Serial, Parallel);
}

TEST(Remarks, CacheHitReplaysIdenticalRemarks) {
  CodeCache Cache;
  std::string Cold = batchRemarks(/*Jobs=*/2, &Cache);
  std::string Warm = batchRemarks(/*Jobs=*/2, &Cache);
  EXPECT_EQ(Cold, Warm);
  EXPECT_GT(Cache.stats().Hits, 0u);
}

TEST(Remarks, EliminationRemarksMatchStatsCounters) {
  ParseResult Parsed = parseModule(loadCorpusSource("generated_medium"));
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  PassManagerOptions Options;
  Options.CollectRemarks = true;
  InstrumentedPipelineResult Result = runInstrumentedPipeline(
      *Parsed.M, PipelineConfig::forVariant(Variant::All), Options);
  ASSERT_TRUE(Result.Ok);

  uint64_t Eliminated = 0, Retained = 0, T1 = 0, T2 = 0, T3 = 0, T4 = 0;
  for (const Remark &R : Result.Remarks.remarks()) {
    if (R.Pass != "elimination")
      continue;
    if (R.Decision == RemarkDecision::Eliminated)
      Eliminated += R.Count;
    if (R.Decision == RemarkDecision::Retained)
      Retained += R.Count;
    T1 += R.Theorem1;
    T2 += R.Theorem2;
    T3 += R.Theorem3;
    T4 += R.Theorem4;
  }
  const PassStats &Stats = Result.Stats;
  EXPECT_EQ(Eliminated, Stats.value("elimination", "sext_eliminated"));
  EXPECT_EQ(Eliminated + Retained, Stats.value("elimination", "analyzed"));
  EXPECT_EQ(T1, Stats.value("elimination", "theorem1_fired"));
  EXPECT_EQ(T2, Stats.value("elimination", "theorem2_fired"));
  EXPECT_EQ(T3, Stats.value("elimination", "theorem3_fired"));
  EXPECT_EQ(T4, Stats.value("elimination", "theorem4_fired"));
}

// --- Trace identity -----------------------------------------------------------

TEST(TraceContext, MintedIdsAreNonZeroAndDistinct) {
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t Id = mintTraceId();
    EXPECT_NE(Id, 0u);
    Seen.insert(Id);
  }
  EXPECT_EQ(Seen.size(), 1000u);
}

TEST(TraceContext, HexFormRoundTrips) {
  uint64_t Id = 0x00c0ffee12345678ull;
  std::string Hex = traceIdHex(Id);
  EXPECT_EQ(Hex.size(), 16u);
  EXPECT_EQ(Hex, "00c0ffee12345678");
  uint64_t Back = 0;
  ASSERT_TRUE(parseTraceIdHex(Hex, Back));
  EXPECT_EQ(Back, Id);
  // Short forms parse; garbage does not and leaves Out untouched.
  ASSERT_TRUE(parseTraceIdHex("ff", Back));
  EXPECT_EQ(Back, 0xffu);
  uint64_t Untouched = 42;
  EXPECT_FALSE(parseTraceIdHex("", Untouched));
  EXPECT_FALSE(parseTraceIdHex("12g4", Untouched));
  EXPECT_EQ(Untouched, 42u);
}

// --- Event log ----------------------------------------------------------------

TEST(EventLog, JsonlExportIsSchemaTaggedAndParseable) {
  EventLog Log;
  TraceContext Ctx;
  Ctx.TraceId = 0xabcdef0011223344ull;
  Ctx.RequestId = 7;
  Log.log(ObsEventKind::Admit, Ctx, "loop.sxir", {{"deadline_ms", "250"}});
  Log.log(ObsEventKind::CacheTier, Ctx, "loop.sxir", {{"tier", "memory"}},
          /*Aux=*/1);
  ASSERT_EQ(Log.size(), 2u);

  std::string Jsonl = Log.toJsonl();
  std::vector<std::string> Lines;
  std::istringstream In(Jsonl);
  for (std::string Line; std::getline(In, Line);)
    if (!Line.empty())
      Lines.push_back(Line);
  ASSERT_EQ(Lines.size(), 3u); // Header + two records.

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Lines[0], Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("schema"), kEventsSchema);
  ASSERT_TRUE(parseJson(Lines[1], Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("event"), "admit");
  EXPECT_EQ(Doc.stringField("trace_id"), "abcdef0011223344");
  EXPECT_EQ(Doc.stringField("name"), "loop.sxir");
  EXPECT_EQ(Doc.stringField("deadline_ms"), "250");
  ASSERT_TRUE(parseJson(Lines[2], Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("event"), "cache_tier");
  EXPECT_EQ(Doc.stringField("tier"), "memory");
}

TEST(EventLog, MirrorsEveryAppendIntoFlightRecorder) {
  FlightRecorder Flight(8);
  EventLog Log(&Flight);
  TraceContext Ctx;
  Ctx.TraceId = mintTraceId();
  Ctx.RequestId = 1;
  Log.log(ObsEventKind::Admit, Ctx, "m.sxir");
  Log.log(ObsEventKind::Reply, Ctx, "m.sxir", {}, /*Aux=*/0);
  EXPECT_EQ(Flight.recorded(), 2u);
  std::string Dump = Flight.dumpToString();
  EXPECT_NE(Dump.find("\"admit\""), std::string::npos);
  EXPECT_NE(Dump.find("\"reply\""), std::string::npos);
  EXPECT_NE(Dump.find(traceIdHex(Ctx.TraceId)), std::string::npos);
}

// --- Flight recorder ----------------------------------------------------------

TEST(FlightRecorder, RingWrapsKeepingTheMostRecentRecords) {
  FlightRecorder Flight(8);
  EXPECT_EQ(Flight.capacity(), 8u);
  for (uint64_t I = 0; I < 20; ++I)
    Flight.record(ObsEventKind::Admit, /*Nanos=*/I, /*TraceId=*/I + 1,
                  /*RequestId=*/I, ("m" + std::to_string(I)).c_str());
  EXPECT_EQ(Flight.recorded(), 20u);

  std::string Dump = Flight.dumpToString();
  std::vector<std::string> Lines;
  std::istringstream In(Dump);
  for (std::string Line; std::getline(In, Line);)
    if (!Line.empty())
      Lines.push_back(Line);
  ASSERT_EQ(Lines.size(), 9u); // Header + one line per live slot.

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Lines[0], Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("schema"), kFlightSchema);

  // The 8 surviving records are exactly the most recent ones (seq 12..19).
  std::set<uint64_t> Seqs;
  for (size_t I = 1; I < Lines.size(); ++I) {
    ASSERT_TRUE(parseJson(Lines[I], Doc, Error)) << Lines[I];
    const JsonValue *Seq = Doc.find("seq");
    ASSERT_NE(Seq, nullptr);
    Seqs.insert(static_cast<uint64_t>(Seq->numberValue()));
  }
  ASSERT_EQ(Seqs.size(), 8u);
  EXPECT_EQ(*Seqs.begin(), 12u);
  EXPECT_EQ(*Seqs.rbegin(), 19u);
}

TEST(FlightRecorder, HostileNamesAreSanitizedAtRecordTime) {
  FlightRecorder Flight(8);
  Flight.record(ObsEventKind::Admit, 1, 1, 1, "evil\"name\\with\nctrl");
  std::string Dump = Flight.dumpToString();
  std::istringstream In(Dump);
  JsonValue Doc;
  std::string Error;
  for (std::string Line; std::getline(In, Line);) {
    if (!Line.empty()) {
      ASSERT_TRUE(parseJson(Line, Doc, Error)) << Line << ": " << Error;
    }
  }
}

TEST(FlightRecorder, FatalSignalHandlerWritesParseableDump) {
  std::string Path = testing::TempDir() + "sxe_flight_sigsegv.jsonl";
  ::unlink(Path.c_str());

  pid_t Child = ::fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    // Child: arm the handler, record traffic, then crash for real.
    FlightRecorder Flight(16);
    installFlightDumpOnFatalSignals(&Flight, Path);
    TraceContext Ctx;
    Ctx.TraceId = 0x1122334455667788ull;
    Ctx.RequestId = 3;
    Flight.record(ObsEventKind::DaemonStart, 1, 0, 0, "sock");
    Flight.record(ObsEventKind::Admit, 2, Ctx.TraceId, Ctx.RequestId,
                  "crash.sxir");
    ::raise(SIGSEGV);
    ::_exit(0); // Unreachable; the handler re-raises with SIG_DFL.
  }

  int WaitStatus = 0;
  ASSERT_EQ(::waitpid(Child, &WaitStatus, 0), Child);
  // The handler re-raises, so the child still dies with the signal.
  ASSERT_TRUE(WIFSIGNALED(WaitStatus));
  EXPECT_EQ(WTERMSIG(WaitStatus), SIGSEGV);

  std::ifstream In(Path);
  ASSERT_TRUE(static_cast<bool>(In)) << Path;
  std::vector<std::string> Lines;
  for (std::string Line; std::getline(In, Line);)
    if (!Line.empty())
      Lines.push_back(Line);
  ASSERT_EQ(Lines.size(), 3u); // Header + two records.

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Lines[0], Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("schema"), kFlightSchema);
  ASSERT_TRUE(parseJson(Lines[2], Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("event"), "admit");
  EXPECT_EQ(Doc.stringField("trace_id"), "1122334455667788");
  EXPECT_EQ(Doc.stringField("name"), "crash.sxir");
  ::unlink(Path.c_str());
}

// --- Exemplars and build identity ---------------------------------------------

TEST(Metrics, HistogramExemplarsAppearInJsonButNotPrometheus) {
  MetricsRegistry Reg;
  Histogram &H =
      Reg.histogram("sxe_compile_latency_seconds", "latency", {0.001, 0.01});
  uint64_t Id = 0xfeedface01020304ull;
  H.observe(0.0005, Id);   // Bucket 0 exemplar.
  H.observe(0.005);        // No exemplar for bucket 1.
  H.observe(99.0, Id + 1); // Overflow-bucket exemplar.
  EXPECT_EQ(H.exemplarTraceId(0), Id);
  EXPECT_EQ(H.exemplarTraceId(1), 0u);
  EXPECT_EQ(H.exemplarTraceId(2), Id + 1);

  std::string Json = Reg.toJson();
  EXPECT_NE(Json.find("\"exemplar_trace_id\": \"feedface01020304\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"inf_exemplar_trace_id\": \"feedface01020305\""),
            std::string::npos);
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Json, Doc, Error)) << Error;

  // The text exposition stays plain Prometheus: no exemplars.
  std::string Prom = Reg.toPrometheus();
  EXPECT_EQ(Prom.find("feedface"), std::string::npos);
  EXPECT_NE(Prom.find("sxe_compile_latency_seconds_bucket"),
            std::string::npos);
}

TEST(Metrics, BuildInfoAndUptimeExportInBothFormats) {
  MetricsRegistry Reg;
  Gauge &Uptime = registerBuildInfoMetrics(Reg);
  Uptime.set(42);

  ASSERT_NE(buildVersion(), nullptr);
  ASSERT_NE(buildGitSha(), nullptr);
  ASSERT_NE(buildTargetLabel(), nullptr);
  EXPECT_GT(std::string(buildVersion()).size(), 0u);

  std::string Prom = Reg.toPrometheus();
  std::string InfoSeries = std::string("sxe_build_info{version=\"") +
                           buildVersion() + "\",git_sha=\"" + buildGitSha() +
                           "\",target=\"" + buildTargetLabel() + "\"} 1";
  EXPECT_NE(Prom.find(InfoSeries), std::string::npos) << Prom;
  EXPECT_NE(Prom.find("sxe_uptime_seconds 42"), std::string::npos);

  std::string Json = Reg.toJson();
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Json, Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("schema"), kMetricsSchema);
  EXPECT_NE(Json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(Json.find("\"sxe_build_info\""), std::string::npos);
}

} // namespace
