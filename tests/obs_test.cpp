//===- tests/obs_test.cpp - Tracing, metrics, remarks ---------------------------===//
//
// Locks the src/obs/ contracts:
//
//   - Histogram bucket boundaries: an observation equal to a bound lands
//     in that bound's bucket (Prometheus `le` semantics), above the last
//     bound in the overflow bucket;
//   - MetricsRegistry is safe under concurrent observation and merges
//     per-thread registries like PassStats (counters/histograms add,
//     gauges max) — the TSan CI job runs this suite;
//   - TraceCollector's export is well-formed JSON (parsed back with
//     support/Json), carries the sxe.trace.v1 schema tag, and an
//     8-worker compile-service batch produces at least two thread
//     tracks;
//   - the remark stream of a parallel (jobs=8) compile-service batch is
//     byte-identical to the serial (jobs=0) reference, including on
//     cache hits (remarks live in the cached artifact);
//   - the Prometheus exposition carries the compile-latency histogram
//     with cumulative buckets, +Inf, _sum, and _count.
//
//===-----------------------------------------------------------------------------===//

#include "jit/CompileService.h"
#include "obs/Metrics.h"
#include "parser/Parser.h"
#include "obs/Remarks.h"
#include "obs/Trace.h"
#include "pm/InstrumentedPipeline.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

using namespace sxe;

namespace {

std::string loadCorpusSource(const std::string &Name) {
  std::string Path =
      std::string(SXE_SOURCE_DIR) + "/tests/corpus/" + Name + ".sxir";
  std::ifstream In(Path);
  EXPECT_TRUE(static_cast<bool>(In)) << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

const char *const CorpusNames[] = {"generated_small", "generated_medium",
                                   "generated_large"};

/// Runs the pinned corpus through a service and returns the remark
/// streams concatenated in submission order.
std::string batchRemarks(unsigned Jobs, CodeCache *Cache) {
  CompileServiceOptions Options;
  Options.Jobs = Jobs;
  Options.Cache = Cache;
  Options.CollectRemarks = true;
  CompileService Service(Options);
  std::vector<std::future<CompileResult>> Futures;
  for (const char *Name : CorpusNames) {
    CompileRequest Request;
    Request.Name = Name;
    Request.Source = loadCorpusSource(Name);
    Request.Config = PipelineConfig::forVariant(Variant::All);
    Request.Hotness = static_cast<double>(Request.Source.size());
    Futures.push_back(Service.enqueue(std::move(Request)));
  }
  std::vector<Remark> All;
  for (auto &Future : Futures) {
    CompileResult Result = Future.get();
    EXPECT_TRUE(Result.Ok) << Result.Error;
    if (Result.Ok)
      All.insert(All.end(), Result.Code->Remarks.begin(),
                 Result.Code->Remarks.end());
  }
  return remarksToJsonl(All);
}

// --- Histograms ---------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram H({1.0, 2.0, 4.0});
  H.observe(0.5);  // <= 1.0
  H.observe(1.0);  // == bound: still bucket 0 (le semantics)
  H.observe(1.5);  // <= 2.0
  H.observe(4.0);  // == last bound
  H.observe(99.0); // overflow
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u); // +Inf
  EXPECT_EQ(H.count(), 5u);
  EXPECT_NEAR(H.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 99.0, 1e-6);
}

TEST(Histogram, DefaultLatencyBoundsAreAscending) {
  std::vector<double> Bounds = defaultLatencyBucketBounds();
  ASSERT_GE(Bounds.size(), 4u);
  for (size_t I = 1; I < Bounds.size(); ++I)
    EXPECT_LT(Bounds[I - 1], Bounds[I]);
}

TEST(Metrics, CountersAndGauges) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("sxe_events_total", "events");
  C.inc();
  C.inc(4);
  EXPECT_EQ(C.value(), 5u);
  // Re-registration returns the same instrument.
  EXPECT_EQ(&Reg.counter("sxe_events_total"), &C);

  Gauge &G = Reg.gauge("sxe_depth", "depth");
  G.set(7);
  G.add(-2);
  EXPECT_EQ(G.value(), 5);
}

TEST(Metrics, ConcurrentObservationAndMerge) {
  // Hot path under contention (the TSan job watches this), then the
  // per-thread-registry merge pattern on top.
  MetricsRegistry Shared;
  Counter &C = Shared.counter("sxe_ops_total");
  Histogram &H = Shared.histogram("sxe_op_seconds", "", {0.5, 1.0});
  constexpr unsigned Threads = 8, PerThread = 1000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&C, &H, T] {
      for (unsigned I = 0; I < PerThread; ++I) {
        C.inc();
        H.observe(T % 2 ? 0.25 : 2.0);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(H.count(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(H.bucketCount(0), uint64_t(Threads) / 2 * PerThread);
  EXPECT_EQ(H.bucketCount(2), uint64_t(Threads) / 2 * PerThread);

  MetricsRegistry PerThreadReg;
  PerThreadReg.counter("sxe_ops_total").inc(10);
  PerThreadReg.gauge("sxe_peak").set(3);
  PerThreadReg.histogram("sxe_op_seconds", "", {0.5, 1.0}).observe(0.1);
  Shared.gauge("sxe_peak").set(9);
  Shared.merge(PerThreadReg);
  EXPECT_EQ(Shared.counter("sxe_ops_total").value(),
            uint64_t(Threads) * PerThread + 10);
  EXPECT_EQ(Shared.gauge("sxe_peak").value(), 9); // max, not sum
  EXPECT_EQ(Shared.histogram("sxe_op_seconds").count(),
            uint64_t(Threads) * PerThread + 1);
}

TEST(Metrics, JsonExportParsesBackWithSchema) {
  MetricsRegistry Reg;
  Reg.counter("sxe_compiles_total", "runs").inc(3);
  Reg.gauge("sxe_queue_depth").set(2);
  Reg.histogram("sxe_compile_latency_seconds", "latency", {0.1, 1.0})
      .observe(0.05);
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Reg.toJson(), Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("schema"), kMetricsSchema);
  const JsonValue *Counters = Doc.find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_TRUE(Counters->isObject());
  const JsonValue *Compiles = Counters->find("sxe_compiles_total");
  ASSERT_NE(Compiles, nullptr);
  EXPECT_EQ(Compiles->numberValue(), 3.0);
  const JsonValue *Hists = Doc.find("histograms");
  ASSERT_NE(Hists, nullptr);
  const JsonValue *Latency = Hists->find("sxe_compile_latency_seconds");
  ASSERT_NE(Latency, nullptr);
  const JsonValue *Buckets = Latency->find("buckets");
  ASSERT_NE(Buckets, nullptr);
  ASSERT_TRUE(Buckets->isArray());
  EXPECT_EQ(Buckets->array().size(), 2u);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry Reg;
  Reg.counter("sxe_compiles_total", "Pipeline runs").inc(2);
  Histogram &H =
      Reg.histogram("sxe_compile_latency_seconds", "latency", {0.1, 1.0});
  H.observe(0.05);
  H.observe(0.5);
  H.observe(30.0);
  std::string Text = Reg.toPrometheus();
  EXPECT_NE(Text.find("# HELP sxe_compiles_total Pipeline runs"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE sxe_compiles_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compiles_total 2"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE sxe_compile_latency_seconds histogram"),
            std::string::npos);
  // Buckets are cumulative.
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_count 3"),
            std::string::npos);
  EXPECT_NE(Text.find("sxe_compile_latency_seconds_sum"), std::string::npos);
}

// --- Traces -------------------------------------------------------------------

TEST(Trace, ExportIsWellFormedAndSchemaTagged) {
  TraceCollector Trace;
  {
    TraceSpan Span(&Trace, "compile", "service");
    Span.arg("module", "m \"quoted\"\n");
  }
  uint64_t Now = wallNowNanos();
  Trace.addSpan("pass", "pass", Now, Now + 1500);
  Trace.nameThread("main");
  EXPECT_EQ(Trace.size(), 2u);
  EXPECT_EQ(Trace.threadTracks(), 1u);

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Trace.toJson(), Doc, Error)) << Error;
  const JsonValue *Other = Doc.find("otherData");
  ASSERT_NE(Other, nullptr);
  EXPECT_EQ(Other->stringField("schema"), kTraceSchema);
  const JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  // 2 "X" spans + 1 thread_name metadata event.
  ASSERT_EQ(Events->array().size(), 3u);
  unsigned Complete = 0, Meta = 0;
  for (const JsonValue &E : Events->array()) {
    if (E.stringField("ph") == "X")
      ++Complete;
    if (E.stringField("ph") == "M")
      ++Meta;
  }
  EXPECT_EQ(Complete, 2u);
  EXPECT_EQ(Meta, 1u);
}

TEST(Trace, NullCollectorSpanIsDisabled) {
  TraceSpan Span(nullptr, "noop", "service");
  Span.arg("ignored", "x"); // Must not crash.
}

TEST(Trace, PipelineRunEmitsOnePassSpanPerPass) {
  ParseResult Parsed = parseModule(loadCorpusSource("generated_small"));
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  TraceCollector Trace;
  PassManagerOptions Options;
  Options.Trace = &Trace;
  InstrumentedPipelineResult Result = runInstrumentedPipeline(
      *Parsed.M, PipelineConfig::forVariant(Variant::All), Options);
  ASSERT_TRUE(Result.Ok);
  EXPECT_EQ(Trace.size(), Result.Timings.size());
}

TEST(Trace, EightWorkerBatchHasMultipleThreadTracks) {
  TraceCollector Trace;
  MetricsRegistry Metrics;
  CompileServiceOptions Options;
  Options.Jobs = 8;
  Options.Trace = &Trace;
  Options.Metrics = &Metrics;
  CompileService Service(Options);
  std::vector<std::future<CompileResult>> Futures;
  // Enough jobs that at least two workers get one even under unlucky
  // scheduling: each worker blocks in a full pipeline run per job.
  for (unsigned Round = 0; Round < 8; ++Round)
    for (const char *Name : CorpusNames) {
      CompileRequest Request;
      Request.Name = std::string(Name) + "#" + std::to_string(Round);
      Request.Source = loadCorpusSource(Name);
      Request.Config = PipelineConfig::forVariant(Variant::All);
      Futures.push_back(Service.enqueue(std::move(Request)));
    }
  for (auto &Future : Futures)
    EXPECT_TRUE(Future.get().Ok);
  Service.shutdown();

  EXPECT_GE(Trace.threadTracks(), 2u);
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Trace.toJson(), Doc, Error)) << Error;
  EXPECT_EQ(Metrics.counter("sxe_compiles_total").value(), 24u);
  EXPECT_EQ(Metrics.histogram("sxe_compile_latency_seconds").count(), 24u);
}

// --- Remarks ------------------------------------------------------------------

TEST(Remarks, SerializationOmitsDefaultsAndEscapes) {
  Remark R;
  R.Pass = "elimination";
  R.Function = "f\"1\"";
  R.InstId = 7;
  R.Op = "sext32";
  R.Decision = RemarkDecision::Eliminated;
  R.Analysis = RemarkAnalysis::Use;
  std::string Line = remarkToJsonLine(R);
  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(parseJson(Line, Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("function"), "f\"1\"");
  EXPECT_EQ(Doc.stringField("decision"), "eliminated");
  EXPECT_EQ(Doc.stringField("analysis"), "use");
  EXPECT_EQ(Doc.find("count"), nullptr);    // Count == 1 omitted.
  EXPECT_EQ(Doc.find("theorem1"), nullptr); // zero omitted
  std::string Header = remarksHeaderLine();
  ASSERT_TRUE(parseJson(Header, Doc, Error)) << Error;
  EXPECT_EQ(Doc.stringField("schema"), kRemarksSchema);
}

TEST(Remarks, ParallelBatchMatchesSerialByteForByte) {
  std::string Serial = batchRemarks(/*Jobs=*/0, /*Cache=*/nullptr);
  std::string Parallel = batchRemarks(/*Jobs=*/8, /*Cache=*/nullptr);
  EXPECT_FALSE(Serial.empty());
  EXPECT_EQ(Serial, Parallel);
}

TEST(Remarks, CacheHitReplaysIdenticalRemarks) {
  CodeCache Cache;
  std::string Cold = batchRemarks(/*Jobs=*/2, &Cache);
  std::string Warm = batchRemarks(/*Jobs=*/2, &Cache);
  EXPECT_EQ(Cold, Warm);
  EXPECT_GT(Cache.stats().Hits, 0u);
}

TEST(Remarks, EliminationRemarksMatchStatsCounters) {
  ParseResult Parsed = parseModule(loadCorpusSource("generated_medium"));
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  PassManagerOptions Options;
  Options.CollectRemarks = true;
  InstrumentedPipelineResult Result = runInstrumentedPipeline(
      *Parsed.M, PipelineConfig::forVariant(Variant::All), Options);
  ASSERT_TRUE(Result.Ok);

  uint64_t Eliminated = 0, Retained = 0, T1 = 0, T2 = 0, T3 = 0, T4 = 0;
  for (const Remark &R : Result.Remarks.remarks()) {
    if (R.Pass != "elimination")
      continue;
    if (R.Decision == RemarkDecision::Eliminated)
      Eliminated += R.Count;
    if (R.Decision == RemarkDecision::Retained)
      Retained += R.Count;
    T1 += R.Theorem1;
    T2 += R.Theorem2;
    T3 += R.Theorem3;
    T4 += R.Theorem4;
  }
  const PassStats &Stats = Result.Stats;
  EXPECT_EQ(Eliminated, Stats.value("elimination", "sext_eliminated"));
  EXPECT_EQ(Eliminated + Retained, Stats.value("elimination", "analyzed"));
  EXPECT_EQ(T1, Stats.value("elimination", "theorem1_fired"));
  EXPECT_EQ(T2, Stats.value("elimination", "theorem2_fired"));
  EXPECT_EQ(T3, Stats.value("elimination", "theorem3_fired"));
  EXPECT_EQ(T4, Stats.value("elimination", "theorem4_fired"));
}

} // namespace
