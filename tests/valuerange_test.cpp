//===- tests/valuerange_test.cpp - Range analysis unit tests ---------------------===//

#include "analysis/CFG.h"
#include "analysis/UseDefChains.h"
#include "analysis/ValueRange.h"
#include "ir/IRBuilder.h"
#include "sxe/Insertion.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

struct RangeFixture {
  std::unique_ptr<Module> M;
  Function *F;
  std::unique_ptr<CFG> Cfg;
  std::unique_ptr<UseDefChains> Chains;
  std::unique_ptr<ValueRange> Ranges;

  RangeFixture() {
    M = std::make_unique<Module>("m");
    F = M->createFunction("f", Type::I32);
  }

  void finalize(uint32_t MaxLen = 0x7FFFFFFF) {
    Cfg = std::make_unique<CFG>(*F);
    Chains = std::make_unique<UseDefChains>(*F, *Cfg);
    Ranges = std::make_unique<ValueRange>(*F, *Chains, TargetInfo::ia64(),
                                          MaxLen);
  }

  const Instruction *defOf(Reg R) const {
    const Instruction *Last = nullptr;
    for (const auto &BB : F->blocks())
      for (const Instruction &I : *BB)
        if (I.hasDest() && I.dest() == R)
          Last = &I;
    return Last;
  }
};

TEST(ValueRangeTest, ConstantsAreExact) {
  RangeFixture Fx;
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg C = B.constI32(42);
  B.ret(C);
  Fx.finalize();
  ValueInterval R = Fx.Ranges->rangeOfDef(Fx.defOf(C));
  EXPECT_EQ(R.Lo, 42);
  EXPECT_EQ(R.Hi, 42);
}

TEST(ValueRangeTest, ArithmeticPropagates) {
  RangeFixture Fx;
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg A = B.constI32(10);
  Reg Bv = B.constI32(3);
  Reg Sum = B.add32(A, Bv, "sum");
  Reg Diff = B.sub32(A, Bv, "diff");
  Reg Prod = B.mul32(A, Bv, "prod");
  Reg Quot = B.div32(A, Bv, "quot");
  Reg Remv = B.rem32(A, Bv, "rem");
  B.ret(Sum);
  (void)Diff;
  (void)Prod;
  (void)Quot;
  (void)Remv;
  Fx.finalize();
  EXPECT_EQ(Fx.Ranges->rangeOfDef(Fx.defOf(Sum)).Lo, 13);
  EXPECT_EQ(Fx.Ranges->rangeOfDef(Fx.defOf(Diff)).Hi, 7);
  EXPECT_EQ(Fx.Ranges->rangeOfDef(Fx.defOf(Prod)).Lo, 30);
  EXPECT_EQ(Fx.Ranges->rangeOfDef(Fx.defOf(Quot)).Lo, 3);
  ValueInterval RR = Fx.Ranges->rangeOfDef(Fx.defOf(Remv));
  EXPECT_GE(RR.Lo, 0);
  EXPECT_LE(RR.Hi, 2);
}

TEST(ValueRangeTest, W32AddOverflowWidensToFull32) {
  RangeFixture Fx;
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg A = B.constI32(INT32_MAX);
  Reg One = B.constI32(1);
  Reg Sum = B.add32(A, One, "sum");
  B.ret(Sum);
  Fx.finalize();
  ValueInterval R = Fx.Ranges->rangeOfDef(Fx.defOf(Sum));
  EXPECT_EQ(R.Lo, INT32_MIN);
  EXPECT_EQ(R.Hi, INT32_MAX);
}

TEST(ValueRangeTest, AndWithNonNegativeBounds) {
  RangeFixture Fx;
  Reg P = Fx.F->addParam(Type::I32, "p");
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg Mask = B.constI32(0xFF);
  Reg Masked = B.and32(P, Mask, "masked");
  B.ret(Masked);
  Fx.finalize();
  ValueInterval R = Fx.Ranges->rangeOfDef(Fx.defOf(Masked));
  EXPECT_EQ(R.Lo, 0);
  EXPECT_LE(R.Hi, 0xFF);
}

TEST(ValueRangeTest, ShrWithNonZeroCountIsNonNegative) {
  RangeFixture Fx;
  Reg P = Fx.F->addParam(Type::I32, "p");
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg Eight = B.constI32(8);
  Reg R = B.shr32(P, Eight, "r");
  B.ret(R);
  Fx.finalize();
  ValueInterval RR = Fx.Ranges->rangeOfDef(Fx.defOf(R));
  EXPECT_EQ(RR.Lo, 0);
  EXPECT_LE(RR.Hi, 0xFFFFFF);
}

TEST(ValueRangeTest, RawByteLoadIsZeroTo255) {
  // The I8 register holds the RAW zero-extended byte until sext8 runs —
  // the default range must not assume canonical [-128,127].
  RangeFixture Fx;
  Reg A = Fx.F->addParam(Type::ArrayRef, "a");
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg Raw = B.arrayLoad(Type::I8, A, Zero, "raw");
  Reg Val = B.sext(8, Raw, "val");
  B.ret(Val);
  Fx.finalize();
  ValueInterval RawR = Fx.Ranges->rangeOfDef(Fx.defOf(Raw));
  EXPECT_EQ(RawR.Lo, 0);
  EXPECT_EQ(RawR.Hi, 255);
  ValueInterval ValR = Fx.Ranges->rangeOfDef(Fx.defOf(Val));
  EXPECT_EQ(ValR.Lo, -128);
  EXPECT_EQ(ValR.Hi, 127);
}

TEST(ValueRangeTest, GuardRefinesLoopCounter) {
  // for (i = 0; i < 100; ++i): inside the body, i is in [0, 99].
  RangeFixture Fx;
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg Hundred = B.constI32(100);
  Reg I = Fx.F->newReg(Type::I32, "i");
  B.copyTo(I, Zero);
  BasicBlock *Head = Fx.F->createBlock("head");
  BasicBlock *Body = Fx.F->createBlock("body");
  BasicBlock *Exit = Fx.F->createBlock("exit");
  B.jmp(Head);
  B.setBlock(Head);
  Reg C = B.cmp32(CmpPred::SLT, I, Hundred);
  B.br(C, Body, Exit);
  B.setBlock(Body);
  Reg One = B.constI32(1);
  Reg Doubled = B.add32(I, I, "doubled"); // Uses i under the guard.
  B.binopTo(I, Opcode::Add, Width::W32, I, One);
  B.jmp(Head);
  B.setBlock(Exit);
  B.ret(I);
  (void)Doubled;
  Fx.finalize();

  // The use of i in `doubled` sees the guard: i <= 99; the entry copy
  // bounds it below at 0 after the fixpoint.
  const Instruction *DoubledDef = Fx.defOf(Doubled);
  ValueInterval R = Fx.Ranges->rangeOfUse(DoubledDef, 0);
  EXPECT_GE(R.Lo, 0);
  EXPECT_LE(R.Hi, 99);
  // And the doubled value is at most 198.
  ValueInterval DR = Fx.Ranges->rangeOfDef(DoubledDef);
  EXPECT_LE(DR.Hi, 198);
}

TEST(ValueRangeTest, GuardInvalidAfterRedefinition) {
  RangeFixture Fx;
  Reg P = Fx.F->addParam(Type::I32, "p");
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg Ten = B.constI32(10);
  Reg C = B.cmp32(CmpPred::SLT, P, Ten);
  BasicBlock *Then = Fx.F->createBlock("then");
  BasicBlock *Done = Fx.F->createBlock("done");
  B.br(C, Then, Done);
  B.setBlock(Then);
  Reg Big = B.constI32(1 << 20);
  Reg X = Fx.F->newReg(Type::I32, "x");
  B.copyTo(X, P);             // x <= 9 here...
  B.binopTo(X, Opcode::Add, Width::W32, P, Big); // ...but p is not
                                                 // redefined: guard holds.
  Reg Probe = B.add32(P, P, "probe"); // p still guarded.
  B.jmp(Done);
  B.setBlock(Done);
  B.ret(P);
  (void)X;
  Fx.finalize();

  const Instruction *ProbeDef = Fx.defOf(Probe);
  ValueInterval R = Fx.Ranges->rangeOfUse(ProbeDef, 0);
  EXPECT_LE(R.Hi, 9);
}

TEST(ValueRangeTest, ArrayLengthBoundFromNewArray) {
  RangeFixture Fx;
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg Len = B.constI32(64);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg V = B.arrayLoad(Type::I32, Arr, Zero, "v");
  B.ret(V);
  Fx.finalize();
  const Instruction *Load = Fx.defOf(V);
  EXPECT_EQ(Fx.Ranges->arrayLengthBound(Load, 0), 64u);
}

TEST(ValueRangeTest, ArrayLengthBoundCappedByMaxLen) {
  RangeFixture Fx;
  Reg A = Fx.F->addParam(Type::ArrayRef, "a");
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg V = B.arrayLoad(Type::I32, A, Zero, "v");
  B.ret(V);
  Fx.finalize(/*MaxLen=*/0x1000);
  const Instruction *Load = Fx.defOf(V);
  EXPECT_EQ(Fx.Ranges->arrayLengthBound(Load, 0), 0x1000u);
}

TEST(ValueRangeTest, DummyExtendBoundsTheIndex) {
  RangeFixture Fx;
  Reg A = Fx.F->addParam(Type::ArrayRef, "a");
  Reg P = Fx.F->addParam(Type::I32, "p");
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg V = B.arrayLoad(Type::I32, A, P, "v");
  Reg Probe = B.add32(P, P, "probe"); // Sees the dummy's range.
  B.ret(Probe);
  (void)V;
  insertDummyExtends(*Fx.F);
  Fx.finalize();

  const Instruction *ProbeDef = Fx.defOf(Probe);
  ValueInterval R = Fx.Ranges->rangeOfUse(ProbeDef, 0);
  EXPECT_GE(R.Lo, 0); // Post-access, the index is known non-negative.
}

TEST(ValueRangeTest, CmpAndArrayLenFacts) {
  RangeFixture Fx;
  Reg A = Fx.F->addParam(Type::ArrayRef, "a");
  Reg P = Fx.F->addParam(Type::I32, "p");
  IRBuilder B(Fx.F);
  B.startBlock("entry");
  Reg C = B.cmp32(CmpPred::SLT, P, P, "c");
  Reg L = B.arrayLen(A, "l");
  B.ret(B.add32(C, L));
  Fx.finalize();
  ValueInterval CR = Fx.Ranges->rangeOfDef(Fx.defOf(C));
  EXPECT_EQ(CR.Lo, 0);
  EXPECT_EQ(CR.Hi, 1);
  ValueInterval LR = Fx.Ranges->rangeOfDef(Fx.defOf(L));
  EXPECT_EQ(LR.Lo, 0);
  EXPECT_EQ(LR.Hi, 0x7FFFFFFF);
}

} // namespace
