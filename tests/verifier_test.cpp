//===- tests/verifier_test.cpp - Verifier negative-case battery -----------------===//
//
// Each case builds an almost-valid function, corrupts one property, and
// checks that the verifier reports it (the interpreter refuses to run
// anything the verifier rejects, so these are the process's safety net).
//
//===---------------------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

struct Fixture {
  std::unique_ptr<Module> M{std::make_unique<Module>("m")};
  Function *F{M->createFunction("f", Type::I32)};
  Reg IntP{F->addParam(Type::I32, "p")};
  Reg ArrP{F->addParam(Type::ArrayRef, "a")};
  Reg DblP{F->addParam(Type::F64, "d")};
  IRBuilder B{F};

  Fixture() { B.startBlock("entry"); }

  ::testing::AssertionResult rejected(const char *Fragment) {
    std::vector<std::string> Problems;
    if (verifyModule(*M, Problems))
      return ::testing::AssertionFailure() << "verifier accepted";
    for (const std::string &P : Problems)
      if (P.find(Fragment) != std::string::npos)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "no problem mentions '" << Fragment << "'; first: "
           << Problems.front();
  }
};

TEST(VerifierNegativeTest, TerminatorInMiddle) {
  Fixture Fx;
  Fx.B.ret(Fx.IntP);
  Fx.B.ret(Fx.IntP); // Second terminator after the first.
  EXPECT_TRUE(Fx.rejected("terminator in the middle"));
}

TEST(VerifierNegativeTest, OperandRegisterOutOfRange) {
  Fixture Fx;
  Reg X = Fx.B.add32(Fx.IntP, Fx.IntP);
  Fx.B.ret(X);
  for (Instruction &I : *Fx.F->entryBlock())
    if (I.opcode() == Opcode::Add)
      I.setOperand(1, 12345);
  EXPECT_TRUE(Fx.rejected("out of range"));
}

TEST(VerifierNegativeTest, ArrayLoadFromNonArray) {
  Fixture Fx;
  auto Inst = std::make_unique<Instruction>(Opcode::ArrayLoad);
  Inst->setType(Type::I32);
  Inst->setDest(Fx.F->newReg(Type::I32));
  Inst->addOperand(Fx.IntP); // Should be an arrayref.
  Inst->addOperand(Fx.IntP);
  Fx.F->entryBlock()->append(std::move(Inst));
  Fx.B.ret(Fx.IntP);
  EXPECT_TRUE(Fx.rejected("arrayref"));
}

TEST(VerifierNegativeTest, FloatIntoIntegerOp) {
  Fixture Fx;
  auto Inst = std::make_unique<Instruction>(Opcode::Add);
  Inst->setWidth(Width::W32);
  Inst->setDest(Fx.F->newReg(Type::I32));
  Inst->addOperand(Fx.IntP);
  Inst->addOperand(Fx.DblP); // f64 into an integer add.
  Fx.F->entryBlock()->append(std::move(Inst));
  Fx.B.ret(Fx.IntP);
  EXPECT_TRUE(Fx.rejected("integer register"));
}

TEST(VerifierNegativeTest, CallArityMismatch) {
  Fixture Fx;
  Function *Callee = Fx.M->createFunction("g", Type::I32);
  {
    Reg Q = Callee->addParam(Type::I32, "q");
    IRBuilder CB(Callee);
    CB.startBlock("entry");
    CB.ret(Q);
  }
  // Call with zero arguments against a one-parameter callee.
  auto Inst = std::make_unique<Instruction>(Opcode::Call);
  Inst->setCallee(Callee);
  Inst->setDest(Fx.F->newReg(Type::I32));
  Fx.F->entryBlock()->append(std::move(Inst));
  Fx.B.ret(Fx.IntP);
  EXPECT_TRUE(Fx.rejected("argument count"));
}

TEST(VerifierNegativeTest, CallArgumentClassMismatch) {
  Fixture Fx;
  Function *Callee = Fx.M->createFunction("g", Type::I32);
  {
    Reg Q = Callee->addParam(Type::I32, "q");
    IRBuilder CB(Callee);
    CB.startBlock("entry");
    CB.ret(Q);
  }
  Reg R = Fx.F->newReg(Type::I32, "r");
  Fx.B.callTo(R, Callee, {Fx.DblP}); // f64 into an int parameter.
  Fx.B.ret(R);
  EXPECT_TRUE(Fx.rejected("register class"));
}

TEST(VerifierNegativeTest, VoidFunctionReturningValue) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  B.ret(P); // Void function returns a value.
  std::vector<std::string> Problems;
  EXPECT_FALSE(verifyModule(*M, Problems));
}

TEST(VerifierNegativeTest, NonVoidFunctionReturningNothing) {
  Fixture Fx;
  Fx.B.retVoid();
  EXPECT_TRUE(Fx.rejected("returns no value"));
}

TEST(VerifierNegativeTest, ReturnClassMismatch) {
  Fixture Fx;
  Fx.B.ret(Fx.DblP); // f64 out of an i32 function.
  EXPECT_TRUE(Fx.rejected("register class"));
}

TEST(VerifierNegativeTest, BranchConditionMustBeInteger) {
  Fixture Fx;
  BasicBlock *Next = Fx.F->createBlock("next");
  auto Inst = std::make_unique<Instruction>(Opcode::Br);
  Inst->addOperand(Fx.DblP);
  Inst->setSuccessor(0, Next);
  Inst->setSuccessor(1, Next);
  Fx.F->entryBlock()->append(std::move(Inst));
  Fx.B.setBlock(Next);
  Fx.B.ret(Fx.IntP);
  EXPECT_TRUE(Fx.rejected("integer register"));
}

TEST(VerifierNegativeTest, SuccessorFromAnotherFunction) {
  Fixture Fx;
  Function *Other = Fx.M->createFunction("other", Type::Void);
  BasicBlock *Foreign = nullptr;
  {
    IRBuilder OB(Other);
    Foreign = OB.startBlock("entry");
    OB.retVoid();
  }
  auto Inst = std::make_unique<Instruction>(Opcode::Jmp);
  Inst->setSuccessor(0, Foreign);
  Fx.F->entryBlock()->append(std::move(Inst));
  EXPECT_TRUE(Fx.rejected("another function"));
}

TEST(VerifierNegativeTest, NewArrayWithBadElementType) {
  Fixture Fx;
  auto Inst = std::make_unique<Instruction>(Opcode::NewArray);
  Inst->setType(Type::ArrayRef); // Arrays of arrays are not modeled.
  Inst->setDest(Fx.F->newReg(Type::ArrayRef));
  Inst->addOperand(Fx.IntP);
  Fx.F->entryBlock()->append(std::move(Inst));
  Fx.B.ret(Fx.IntP);
  EXPECT_TRUE(Fx.rejected("element type"));
}

TEST(VerifierNegativeTest, MissingDestination) {
  Fixture Fx;
  auto Inst = std::make_unique<Instruction>(Opcode::Add);
  Inst->setWidth(Width::W32);
  Inst->addOperand(Fx.IntP);
  Inst->addOperand(Fx.IntP);
  Fx.F->entryBlock()->append(std::move(Inst)); // No dest set.
  Fx.B.ret(Fx.IntP);
  EXPECT_TRUE(Fx.rejected("destination"));
}

TEST(VerifierNegativeTest, WrongOperandCount) {
  Fixture Fx;
  auto Inst = std::make_unique<Instruction>(Opcode::Add);
  Inst->setWidth(Width::W32);
  Inst->setDest(Fx.F->newReg(Type::I32));
  Inst->addOperand(Fx.IntP); // Only one operand.
  Fx.F->entryBlock()->append(std::move(Inst));
  Fx.B.ret(Fx.IntP);
  EXPECT_TRUE(Fx.rejected("operand count"));
}

} // namespace
