//===- tests/jit_test.cpp - Compile service, code cache, tiering ----------------===//
//
// Locks the jit/ subsystem's contracts:
//
//   - support/IRHash is structural: stable across clones and cosmetic
//     renames, different for different programs;
//   - the code-cache key separates targets, configurations, and
//     profiles — no false hits — and the sharded LRU evicts correctly;
//   - the compile service is deterministic: compiling the pinned corpus
//     with 8 workers produces byte-identical IR and identical
//     sext_eliminated counts to the serial (jobs=0) run;
//   - worker shutdown is graceful (every accepted future resolves);
//   - the tiered controller closes the interpret -> profile -> recompile
//     loop with a real interpreter profile;
//   - PassStats::merge and the Timer thread-CPU clock behave (the two
//     concurrency satellites).
//
//===-----------------------------------------------------------------------------===//

#include "codegen/NativeEngine.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "jit/CodeCache.h"
#include "jit/CompileQueue.h"
#include "jit/CompileService.h"
#include "jit/TieredController.h"
#include "parser/Parser.h"
#include "pm/InstrumentedPipeline.h"
#include "support/IRHash.h"
#include "support/Timer.h"
#include "tests/TestHelpers.h"

#include <fstream>
#include <set>
#include <sstream>
#include <gtest/gtest.h>

using namespace sxe;

namespace {

/// A tiny two-function module with a W32 add feeding an array load (so
/// the pipeline has an extension to reason about).
std::unique_ptr<Module> buildSmallModule(const char *ModuleName = "small",
                                         int32_t Bias = 1) {
  auto M = std::make_unique<Module>(ModuleName);
  Function *F = M->createFunction("kernel", Type::I32);
  Reg A = F->addParam(Type::ArrayRef, "a");
  Reg I = F->addParam(Type::I32, "i");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg T = B.add32(I, B.constI32(Bias), "t");
  Reg V = B.arrayLoad(Type::I32, A, T, "v");
  B.ret(V);

  Function *Main = M->createFunction("main", Type::I32);
  IRBuilder MB(Main);
  MB.startBlock("entry");
  Reg Arr = MB.newArray(Type::I32, MB.constI32(64), "arr");
  Reg R = Main->newReg(Type::I32, "r");
  MB.callTo(R, F, {Arr, MB.constI32(3)});
  MB.ret(R);
  return M;
}

std::string loadCorpusSource(const std::string &Name) {
  std::string Path =
      std::string(SXE_SOURCE_DIR) + "/tests/corpus/" + Name + ".sxir";
  std::ifstream In(Path);
  EXPECT_TRUE(static_cast<bool>(In)) << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

const char *const CorpusNames[] = {"generated_small", "generated_medium",
                                   "generated_large"};

} // namespace

//===----------------------------------------------------------------------===//
// support/IRHash
//===----------------------------------------------------------------------===//

TEST(IRHash, StableAcrossCloneAndCosmeticNames) {
  auto M = buildSmallModule();
  uint64_t H = hashModule(*M);

  // A deep clone is structurally identical.
  auto Clone = cloneModule(*M);
  EXPECT_EQ(H, hashModule(*Clone));

  // The module name is cosmetic.
  auto Renamed = buildSmallModule("completely-different-name");
  EXPECT_EQ(H, hashModule(*Renamed));

  // A print/parse round trip loses register display names but not
  // structure.
  ParseResult Reparsed = parseModule(printModule(*M));
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.Error;
  EXPECT_EQ(H, hashModule(*Reparsed.M));
}

TEST(IRHash, SensitiveToProgramChanges) {
  auto M = buildSmallModule();
  auto Different = buildSmallModule("small", /*Bias=*/2);
  EXPECT_NE(hashModule(*M), hashModule(*Different));

  // Hash changes when a function is appended.
  auto Extended = cloneModule(*M);
  Function *Extra = Extended->createFunction("extra", Type::I32);
  IRBuilder B(Extra);
  B.startBlock("entry");
  B.ret(B.constI32(7));
  EXPECT_NE(hashModule(*M), hashModule(*Extended));
}

TEST(IRHash, FunctionHashIgnoresSiblings) {
  auto M = buildSmallModule();
  uint64_t FnHash = hashFunction(*M->findFunction("kernel"));
  auto Clone = cloneModule(*M);
  EXPECT_EQ(FnHash, hashFunction(*Clone->findFunction("kernel")));
}

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

TEST(CodeCacheKey, SeparatesTargetsConfigsAndProfiles) {
  auto M = buildSmallModule();
  uint64_t H = hashModule(*M);

  PipelineConfig Ia64 = PipelineConfig::forVariant(Variant::All);
  PipelineConfig Ppc64 =
      PipelineConfig::forVariant(Variant::All, TargetInfo::ppc64());
  PipelineConfig Baseline = PipelineConfig::forVariant(Variant::Baseline);
  EXPECT_NE(codeCacheKey(H, Ia64), codeCacheKey(H, Ppc64));
  EXPECT_NE(codeCacheKey(H, Ia64), codeCacheKey(H, Baseline));

  // Same config, different module content.
  auto Different = buildSmallModule("small", /*Bias=*/5);
  EXPECT_NE(codeCacheKey(H, Ia64),
            codeCacheKey(hashModule(*Different), Ia64));

  // A profile changes the key; a *different* profile changes it again.
  ProfileInfo Profile;
  Instruction *SomeBranch = nullptr;
  for (const auto &BB : M->findFunction("kernel")->blocks())
    for (Instruction &Inst : *BB)
      if (!SomeBranch)
        SomeBranch = &Inst;
  ASSERT_NE(SomeBranch, nullptr);
  PipelineConfig WithProfile = Ia64;
  WithProfile.Profile = &Profile;
  // Empty profile fingerprints differently from "no profile"? No: an
  // empty profile hashes like the FNV basis, and that is fine as long as
  // recorded data changes the key.
  std::string EmptyKey = codeCacheKey(H, WithProfile);
  Profile.recordBranch(SomeBranch, true);
  EXPECT_NE(EmptyKey, codeCacheKey(H, WithProfile));
}

//===----------------------------------------------------------------------===//
// CodeCache
//===----------------------------------------------------------------------===//

TEST(CodeCache, LruEvictionWithinShard) {
  CodeCacheOptions Options;
  Options.MaxEntries = 2;
  Options.Shards = 1; // Single shard so capacity is exact.
  CodeCache Cache(Options);

  auto CodeOf = [](const char *Text) {
    auto Code = std::make_shared<CompiledCode>();
    Code->IRText = Text;
    return Code;
  };
  Cache.insert("k1", CodeOf("one"));
  Cache.insert("k2", CodeOf("two"));
  ASSERT_TRUE(Cache.contains("k1"));
  // Touch k1 so k2 becomes least recently used.
  EXPECT_NE(Cache.lookup("k1"), nullptr);
  Cache.insert("k3", CodeOf("three"));

  EXPECT_TRUE(Cache.contains("k1"));
  EXPECT_FALSE(Cache.contains("k2"));
  EXPECT_TRUE(Cache.contains("k3"));

  CodeCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Evictions, 1u);
  EXPECT_EQ(Stats.Insertions, 3u);
  EXPECT_EQ(Stats.Entries, 2u);
}

TEST(CodeCache, CountsHitsAndMisses) {
  CodeCache Cache;
  EXPECT_EQ(Cache.lookup("absent"), nullptr);
  auto Code = std::make_shared<CompiledCode>();
  Cache.insert("present", Code);
  EXPECT_EQ(Cache.lookup("present"), Code);
  CodeCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
}

TEST(CodeCache, NoFalseHitsAcrossTargets) {
  CodeCache Cache;
  CompileServiceOptions Options;
  Options.Jobs = 0; // Deterministic inline mode.
  Options.Cache = &Cache;
  CompileService Service(Options);

  for (const TargetInfo *Target :
       {&TargetInfo::ia64(), &TargetInfo::ppc64()}) {
    CompileRequest Request;
    Request.Name = Target->name();
    Request.M = buildSmallModule();
    Request.Config = PipelineConfig::forVariant(Variant::All, *Target);
    CompileResult Result = Service.enqueue(std::move(Request)).get();
    ASSERT_TRUE(Result.Ok) << Result.Error;
    EXPECT_FALSE(Result.CacheHit);
  }
  CodeCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 0u);
  EXPECT_EQ(Stats.Misses, 2u);
}

TEST(CodeCache, HitOnRecompileIsByteIdentical) {
  CodeCache Cache;
  CompileServiceOptions Options;
  Options.Jobs = 0;
  Options.Cache = &Cache;
  CompileService Service(Options);

  auto Submit = [&Service] {
    CompileRequest Request;
    Request.Name = "same";
    Request.M = buildSmallModule();
    Request.Config = PipelineConfig::forVariant(Variant::All);
    return Service.enqueue(std::move(Request)).get();
  };
  CompileResult First = Submit();
  CompileResult Again = Submit();
  ASSERT_TRUE(First.Ok && Again.Ok);
  EXPECT_FALSE(First.CacheHit);
  EXPECT_TRUE(Again.CacheHit);
  EXPECT_EQ(First.Code->IRText, Again.Code->IRText);
  EXPECT_EQ(First.Code->Stats.total("sext_eliminated"),
            Again.Code->Stats.total("sext_eliminated"));
  EXPECT_EQ(Service.stats().CacheHits, 1u);
  EXPECT_EQ(Service.stats().Compiled, 1u);
}

//===----------------------------------------------------------------------===//
// CompileQueue
//===----------------------------------------------------------------------===//

TEST(CompileQueue, ServesHottestFirstWithFifoTies) {
  CompileQueue Queue;
  auto Push = [&Queue](const char *Name, double Hotness) {
    auto Job = std::make_unique<QueuedCompile>();
    Job->Request.Name = Name;
    Job->Request.Hotness = Hotness;
    ASSERT_TRUE(Queue.push(Job));
  };
  Push("cold", 1.0);
  Push("hot", 5.0);
  Push("warm-a", 3.0);
  Push("warm-b", 3.0);

  EXPECT_EQ(Queue.pop()->Request.Name, "hot");
  EXPECT_EQ(Queue.pop()->Request.Name, "warm-a"); // FIFO among equals.
  EXPECT_EQ(Queue.pop()->Request.Name, "warm-b");
  EXPECT_EQ(Queue.pop()->Request.Name, "cold");
  EXPECT_EQ(Queue.tryPop(), nullptr);
}

TEST(CompileQueue, CloseDrainsThenReturnsNull) {
  CompileQueue Queue;
  auto Job = std::make_unique<QueuedCompile>();
  Job->Request.Name = "pending";
  ASSERT_TRUE(Queue.push(Job));
  Queue.close();

  // Push after close is refused and ownership stays with the caller.
  auto Late = std::make_unique<QueuedCompile>();
  EXPECT_FALSE(Queue.push(Late));
  EXPECT_NE(Late, nullptr);

  EXPECT_EQ(Queue.pop()->Request.Name, "pending");
  EXPECT_EQ(Queue.pop(), nullptr);
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

TEST(CompileService, ParallelRunMatchesSerialByteForByte) {
  // Serial reference: jobs=0, no cache.
  std::map<std::string, std::string> SerialIR;
  std::map<std::string, uint64_t> SerialEliminated;
  {
    CompileServiceOptions Options;
    Options.Jobs = 0;
    CompileService Service(Options);
    for (const char *Name : CorpusNames) {
      CompileRequest Request;
      Request.Name = Name;
      Request.Source = loadCorpusSource(Name);
      Request.Config = PipelineConfig::forVariant(Variant::All);
      CompileResult Result = Service.enqueue(std::move(Request)).get();
      ASSERT_TRUE(Result.Ok) << Name << ": " << Result.Error;
      SerialIR[Name] = Result.Code->IRText;
      SerialEliminated[Name] = Result.Code->Stats.total("sext_eliminated");
    }
  }

  // Parallel run: 8 workers, shared cache, every module submitted twice
  // (the second submissions exercise concurrent hit/recompile paths).
  CodeCache Cache;
  CompileServiceOptions Options;
  Options.Jobs = 8;
  Options.Cache = &Cache;
  CompileService Service(Options);
  std::vector<std::future<CompileResult>> Futures;
  for (unsigned Round = 0; Round < 2; ++Round) {
    for (const char *Name : CorpusNames) {
      CompileRequest Request;
      Request.Name = Name;
      Request.Source = loadCorpusSource(Name);
      Request.Config = PipelineConfig::forVariant(Variant::All);
      Request.Hotness = static_cast<double>(Request.Source.size());
      Futures.push_back(Service.enqueue(std::move(Request)));
    }
  }
  for (auto &Future : Futures) {
    CompileResult Result = Future.get();
    ASSERT_TRUE(Result.Ok) << Result.Name << ": " << Result.Error;
    EXPECT_EQ(Result.Code->IRText, SerialIR[Result.Name])
        << Result.Name << ": parallel IR differs from serial";
    EXPECT_EQ(Result.Code->Stats.total("sext_eliminated"),
              SerialEliminated[Result.Name])
        << Result.Name;
  }
}

TEST(CompileService, GracefulShutdownResolvesEveryFuture) {
  CompileServiceOptions Options;
  Options.Jobs = 2;
  CompileService Service(Options);
  std::vector<std::future<CompileResult>> Futures;
  for (unsigned Index = 0; Index < 16; ++Index) {
    CompileRequest Request;
    Request.Name = "job" + std::to_string(Index);
    Request.M = buildSmallModule("m", static_cast<int32_t>(Index));
    Request.Config = PipelineConfig::forVariant(Variant::All);
    Futures.push_back(Service.enqueue(std::move(Request)));
  }
  Service.shutdown(); // Queued work still drains.
  for (auto &Future : Futures)
    EXPECT_TRUE(Future.get().Ok);
  EXPECT_EQ(Service.stats().Compiled, 16u);
}

TEST(CompileService, EnqueueAfterShutdownIsRefusedNotHung) {
  CompileServiceOptions Options;
  Options.Jobs = 1;
  CompileService Service(Options);
  Service.shutdown();
  CompileRequest Request;
  Request.Name = "late";
  Request.M = buildSmallModule();
  Request.Config = PipelineConfig::forVariant(Variant::All);
  CompileResult Result = Service.enqueue(std::move(Request)).get();
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("shut down"), std::string::npos);
}

TEST(CompileService, ReportsParseFailures) {
  CompileServiceOptions Options;
  Options.Jobs = 0;
  CompileService Service(Options);
  CompileRequest Request;
  Request.Name = "broken";
  Request.Source = "this is not sxir";
  Request.Config = PipelineConfig::forVariant(Variant::All);
  CompileResult Result = Service.enqueue(std::move(Request)).get();
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("parse error"), std::string::npos);
  EXPECT_EQ(Service.stats().Failed, 1u);
}

TEST(CompileService, AggregateStatsSumPerRunCounters) {
  CompileServiceOptions Options;
  Options.Jobs = 0;
  CompileService Service(Options);
  uint64_t Sum = 0;
  for (int32_t Bias = 1; Bias <= 3; ++Bias) {
    CompileRequest Request;
    Request.Name = "m" + std::to_string(Bias);
    Request.M = buildSmallModule("m", Bias);
    Request.Config = PipelineConfig::forVariant(Variant::All);
    CompileResult Result = Service.enqueue(std::move(Request)).get();
    ASSERT_TRUE(Result.Ok);
    Sum += Result.Code->Stats.total("sext_eliminated");
  }
  CompileServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.Aggregate.total("sext_eliminated"), Sum);
  EXPECT_EQ(Stats.Submitted, 3u);
  // Service counters surface as pseudo-passes in the pass-stats
  // vocabulary (docs/OBSERVABILITY.md).
  EXPECT_EQ(Stats.Aggregate.value("compile-service", "compiled"), 3u);
  EXPECT_EQ(Stats.Aggregate.value("compile-service", "submitted"), 3u);
}

//===----------------------------------------------------------------------===//
// TieredController
//===----------------------------------------------------------------------===//

TEST(TieredController, ClosesTheMixedModeLoop) {
  auto M = buildSmallModule();
  CodeCache Cache;
  CompileServiceOptions Options;
  Options.Jobs = 2;
  Options.Cache = &Cache;
  CompileService Service(Options);

  TieredController Controller(Service);
  TieredOutcome Outcome = Controller.run(*M);

  EXPECT_TRUE(Outcome.Warmup.ok());
  ASSERT_TRUE(Outcome.Unprofiled.Ok) << Outcome.Unprofiled.Error;
  ASSERT_TRUE(Outcome.Profiled.Ok) << Outcome.Profiled.Error;

  // Both tiers produce verifying modules.
  ParseResult Reparsed = parseModule(Outcome.Profiled.Code->IRText);
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.Error;
  EXPECT_TRUE(test::moduleVerifies(*Reparsed.M, /*AllowDummies=*/false));
}

TEST(TieredController, ExecutesRecompiledCodeNatively) {
  if (!NativeModule::hostSupported())
    GTEST_SKIP() << "host cannot execute emitted x86-64 code";

  auto M = buildSmallModule();
  CodeCache Cache;
  CompileServiceOptions SvcOptions;
  SvcOptions.Jobs = 2;
  SvcOptions.Cache = &Cache;
  CompileService Service(SvcOptions);

  TieredOptions Options;
  Options.Target = &TargetInfo::x86_64();
  TieredController Controller(Service, Options);
  TieredOutcome Outcome = Controller.run(*M);

  ASSERT_TRUE(Outcome.Profiled.Ok) << Outcome.Profiled.Error;
  ASSERT_TRUE(Outcome.NativeExecuted);
  // The natively executed tier-2 code agrees with the tier-0 warm-up.
  EXPECT_EQ(Outcome.Native.Trap, Outcome.Warmup.Trap);
  if (Outcome.Warmup.ok())
    EXPECT_EQ(Outcome.Native.ReturnValue, Outcome.Warmup.ReturnValue);
}

TEST(TieredController, ProfiledRecompileHasItsOwnCacheEntry) {
  // The diamond from examples/profile_guided: its branches actually
  // execute, so the warm-up records a non-empty profile and the tier-2
  // key must differ from tier 1's.
  auto M = std::make_unique<Module>("looped");
  Function *F = M->createFunction("main", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Arr = B.newArray(Type::I32, B.constI32(128), "arr");
  Reg I = F->newReg(Type::I32, "i");
  B.copyTo(I, B.constI32(0));
  Reg Sum = F->newReg(Type::I32, "sum");
  B.copyTo(Sum, B.constI32(0));
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Head);
  B.setBlock(Head);
  Reg InLoop = B.cmp32(CmpPred::SLT, I, B.constI32(100));
  B.br(InLoop, Body, Exit);
  B.setBlock(Body);
  Reg V = B.arrayLoad(Type::I32, Arr, I, "v");
  B.binopTo(Sum, Opcode::Add, Width::W32, Sum, V);
  B.binopTo(I, Opcode::Add, Width::W32, I, B.constI32(1));
  B.jmp(Head);
  B.setBlock(Exit);
  B.ret(Sum);

  CodeCache Cache;
  CompileServiceOptions Options;
  Options.Jobs = 0; // Inline: exact counter accounting.
  Options.Cache = &Cache;
  CompileService Service(Options);

  TieredController Controller(Service);
  TieredOutcome Outcome = Controller.run(*M);
  ASSERT_TRUE(Outcome.Warmup.ok());
  EXPECT_TRUE(Outcome.ProfileCollected);
  ASSERT_TRUE(Outcome.Unprofiled.Ok);
  ASSERT_TRUE(Outcome.Profiled.Ok);

  // Two distinct compiles, zero false cache hits between tiers.
  EXPECT_FALSE(Outcome.Profiled.CacheHit);
  EXPECT_EQ(Service.stats().Compiled, 2u);
  EXPECT_EQ(Cache.stats().Entries, 2u);

  // Re-running the same workload now hits both tiers' entries.
  TieredOutcome Again = Controller.run(*M);
  EXPECT_TRUE(Again.Unprofiled.CacheHit);
  EXPECT_TRUE(Again.Profiled.CacheHit);
  EXPECT_EQ(Again.Profiled.Code->IRText, Outcome.Profiled.Code->IRText);
}

//===----------------------------------------------------------------------===//
// Concurrency satellites: PassStats::merge, Timer thread-CPU clock
//===----------------------------------------------------------------------===//

TEST(PassStatsMerge, SumsAndPreservesFirstSeenOrder) {
  PassStats A;
  A.counter("elimination", "sext_eliminated") = 5;
  A.counter("insertion", "sext_inserted") = 2;

  PassStats B;
  B.counter("elimination", "sext_eliminated") = 7;
  B.counter("conversion64", "sext_generated") = 11;

  A.merge(B);
  EXPECT_EQ(A.value("elimination", "sext_eliminated"), 12u);
  EXPECT_EQ(A.value("insertion", "sext_inserted"), 2u);
  EXPECT_EQ(A.value("conversion64", "sext_generated"), 11u);

  // A's original registration order survives; B's new counter appends.
  ASSERT_EQ(A.entries().size(), 3u);
  EXPECT_EQ(A.entries()[0].Name, "sext_eliminated");
  EXPECT_EQ(A.entries()[1].Name, "sext_inserted");
  EXPECT_EQ(A.entries()[2].Name, "sext_generated");
}

TEST(PassStatsMerge, FlagsCombineByMaxNotAddition) {
  // Mode flags describe *how* a pass ran; merging the per-run stats of
  // N identically-configured workers must still report 1, not N.
  PassStats Merged;
  for (unsigned Run = 0; Run < 8; ++Run) {
    PassStats PerRun;
    PerRun.flag("insertion", "pde_variant") = 1;
    PerRun.flag("order-determination", "by_frequency") = 0;
    PerRun.counter("elimination", "sext_eliminated") = 3;
    Merged.merge(PerRun);
  }
  EXPECT_EQ(Merged.value("insertion", "pde_variant"), 1u);
  EXPECT_EQ(Merged.value("order-determination", "by_frequency"), 0u);
  EXPECT_EQ(Merged.value("elimination", "sext_eliminated"), 24u);

  // max also wins when the flag appears on both sides with 0 first, and
  // the flag bit itself survives the merge into a fresh registry.
  PassStats Zero, One;
  Zero.flag("insertion", "pde_variant") = 0;
  One.flag("insertion", "pde_variant") = 1;
  Zero.merge(One);
  Zero.merge(One);
  EXPECT_EQ(Zero.value("insertion", "pde_variant"), 1u);
  ASSERT_EQ(Zero.entries().size(), 1u);
  EXPECT_TRUE(Zero.entries()[0].IsFlag);
}

TEST(TimerCpu, AccumulatesThreadCpuAlongsideWall) {
  Timer T;
  volatile uint64_t Sink = 0;
  T.start();
  for (uint64_t Index = 0; Index < 2000000; ++Index)
    Sink = Sink + Index * Index;
  T.stop();
  EXPECT_GT(T.elapsedNanos(), 0u);
  EXPECT_GT(T.elapsedCpuNanos(), 0u);

  // CPU accumulates across intervals like wall time does.
  uint64_t AfterFirst = T.elapsedCpuNanos();
  T.start();
  for (uint64_t Index = 0; Index < 2000000; ++Index)
    Sink = Sink + Index * Index;
  T.stop();
  EXPECT_GT(T.elapsedCpuNanos(), AfterFirst);

  T.reset();
  EXPECT_EQ(T.elapsedNanos(), 0u);
  EXPECT_EQ(T.elapsedCpuNanos(), 0u);
}

TEST(TimerCpu, WorkerThreadChargesOnlyItsOwnCpu) {
  // A sleeping thread burns wall time but almost no CPU: the per-thread
  // clock must show cpu << wall, which the process clock would not.
  Timer T;
  std::thread Sleeper([&T] {
    T.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    T.stop();
  });
  Sleeper.join();
  EXPECT_GE(T.elapsedNanos(), 40u * 1000 * 1000);
  EXPECT_LT(T.elapsedCpuNanos(), T.elapsedNanos() / 2);
}
