//===- tests/random_program_test.cpp - Differential fuzzing -----------------------===//
//
// Property test over seeded random modules from fuzz/RandomModuleGenerator
// (the generator that used to be inlined here, now a library shared with
// tools/sxe-difftest). For every pipeline variant the four oracle-contract
// invariants are checked explicitly:
//   - the post-pipeline module verifies with no dummy extensions left,
//   - machine-semantics execution matches the Java-semantics oracle
//     (checksum AND trap kind),
//   - the wild-address detector never fires,
//   - the full algorithm never executes more extensions than the baseline.
//
//===--------------------------------------------------------------------------------===//

#include "fuzz/DiffTest.h"
#include "fuzz/RandomModuleGenerator.h"
#include "interp/Interpreter.h"
#include "ir/Cloner.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "sxe/Pipeline.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

class RandomProgramSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramSweep, AllVariantsMatchJavaOracle) {
  RandomModuleGenerator Gen(GetParam(), GeneratorOptions::medium());
  std::unique_ptr<Module> Pristine = Gen.generate();

  std::vector<std::string> Problems;
  ASSERT_TRUE(verifyModule(*Pristine, Problems))
      << Problems.front() << "\n"
      << printModule(*Pristine);

  InterpOptions Java;
  Java.Semantics = ExecSemantics::Java;
  Java.MaxSteps = 1u << 22;
  ExecResult Oracle = Interpreter(*Pristine, Java).run("main");
  ASSERT_NE(Oracle.Trap, TrapKind::StepLimit);

  uint64_t BaselineSext = 0;
  for (Variant V : AllVariants) {
    auto Clone = cloneModule(*Pristine);
    runPipeline(*Clone, PipelineConfig::forVariant(V));

    // Invariant 1: verifier-clean with no dummy extensions left behind.
    VerifierOptions Options;
    Options.AllowDummyExtends = false;
    Problems.clear();
    ASSERT_TRUE(verifyModule(*Clone, Problems, Options))
        << variantName(V) << ": " << Problems.front();

    InterpOptions Machine;
    Machine.MaxSteps = 1u << 22;
    ExecResult Got = Interpreter(*Clone, Machine).run("main");

    // Invariant 3: the wild-address miscompile detector never fires.
    EXPECT_NE(Got.Trap, TrapKind::WildAddress)
        << variantName(V) << ": miscompile detected\n"
        << printModule(*Clone);
    // Invariant 2: trap kind and checksum match the oracle.
    EXPECT_EQ(Got.Trap, Oracle.Trap) << variantName(V);
    if (Oracle.Trap == TrapKind::None) {
      EXPECT_EQ(Got.ReturnValue, Oracle.ReturnValue)
          << variantName(V) << "\n"
          << printModule(*Clone);
    }

    // Invariant 4: the full algorithm never executes more extensions
    // than the baseline (extension-census no-regression).
    if (V == Variant::Baseline)
      BaselineSext = Got.totalExecutedSext();
    if (V == Variant::All && Oracle.Trap == TrapKind::None) {
      EXPECT_LE(Got.totalExecutedSext(), BaselineSext);
    }
  }

  // The full algorithm must also be sound on the other target models
  // (PPC64's implicit extension; generic64's missing 32-bit compares).
  for (const TargetInfo *Target :
       {&TargetInfo::ppc64(), &TargetInfo::generic64()}) {
    auto Clone = cloneModule(*Pristine);
    runPipeline(*Clone, PipelineConfig::forVariant(Variant::All, *Target));
    InterpOptions Machine;
    Machine.Target = Target;
    Machine.MaxSteps = 1u << 22;
    ExecResult Got = Interpreter(*Clone, Machine).run("main");
    EXPECT_NE(Got.Trap, TrapKind::WildAddress) << Target->name();
    EXPECT_EQ(Got.Trap, Oracle.Trap) << Target->name();
    if (Oracle.Trap == TrapKind::None) {
      EXPECT_EQ(Got.ReturnValue, Oracle.ReturnValue) << Target->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep,
                         ::testing::Range<uint64_t>(1, 81));

// The shared harness enforces the same contract: a module that passes the
// explicit checks above must also pass runDifferentialTest, which is what
// tools/sxe-difftest scales up to thousands of seeds.
TEST(RandomProgramSweep, HarnessAgreesWithExplicitChecks) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    RandomModuleGenerator Gen(Seed, GeneratorOptions::medium());
    std::unique_ptr<Module> Pristine = Gen.generate();
    DiffResult Result = runDifferentialTest(*Pristine);
    EXPECT_TRUE(Result.ok())
        << "seed " << Seed << ": " << Result.Failure->describe();
  }
}

} // namespace
