//===- tests/random_program_test.cpp - Differential fuzzing -----------------------===//
//
// Generates random (but structurally safe) programs and checks, for every
// pipeline variant:
//   - the post-pipeline module verifies with no dummy extensions left,
//   - machine-semantics execution matches the Java-semantics oracle
//     (checksum AND trap kind),
//   - the wild-address detector never fires,
//   - the full algorithm never executes more extensions than the baseline.
//
//===--------------------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Cloner.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "support/RNG.h"
#include "sxe/Pipeline.h"
#include "workloads/KernelBuilder.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

/// Random structured-program generator. All array indices are masked to
/// the (power-of-two) array length, so programs are trap-free by
/// construction except for arithmetic edge cases, which must then trap
/// identically under every variant.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::unique_ptr<Module> generate() {
    auto M = std::make_unique<Module>("fuzz");
    Function *F = M->createFunction("main", Type::I64);
    K = std::make_unique<KernelBuilder>(F);
    IRBuilder &B = K->ir();

    // Arrays with power-of-two lengths.
    for (int Index = 0; Index < 2; ++Index) {
      int32_t Len = 8 << R.nextBelow(4);
      Reg LenReg = B.constI32(Len);
      Arrays.push_back(B.newArray(Type::I32, LenReg, "arr"));
      Masks.push_back(B.constI32(Len - 1));
      K->fillLCG(Arrays.back(), LenReg,
                 static_cast<int32_t>(R.next() & 0x7FFFFFFF));
    }
    {
      int32_t Len = 8 << R.nextBelow(3);
      Reg LenReg = B.constI32(Len);
      Arrays.push_back(B.newArray(Type::I8, LenReg, "bytes"));
      Masks.push_back(B.constI32(Len - 1));
      ByteArrayIndex = Arrays.size() - 1;
      K->fillLCG(Arrays.back(), LenReg,
                 static_cast<int32_t>(R.next() & 0x7FFFFFFF), Type::I8);
    }

    // Integer variable pool.
    for (int Index = 0; Index < 6; ++Index)
      Vars.push_back(K->varI32(static_cast<int32_t>(R.next()),
                               "v" + std::to_string(Index)));
    Acc = K->varI64(0, "acc");

    emitBlock(3);

    // Final checksum over one array.
    Reg I = F->newReg(Type::I32, "ci");
    Reg Zero = B.constI32(0);
    Reg Eight = B.constI32(8);
    K->forUp(I, Zero, Eight, [&] {
      Reg Idx = B.and32(I, Masks[0]);
      Reg V = B.arrayLoad(Type::I32, Arrays[0], Idx);
      accumulate(V);
    });
    B.ret(Acc);
    K.reset();
    Vars.clear();
    Arrays.clear();
    Masks.clear();
    return M;
  }

private:
  Reg randVar() { return Vars[R.nextBelow(Vars.size())]; }

  void accumulate(Reg V32) {
    IRBuilder &B = K->ir();
    Reg Canon = B.sext(32, V32); // Keep the oracle value canonical.
    Reg Wide = K->function()->newReg(Type::I64, "w");
    B.copyTo(Wide, Canon);
    B.binopTo(Acc, Opcode::Add, Width::W64, Acc, Wide);
  }

  void emitStatement(unsigned Depth) {
    IRBuilder &B = K->ir();
    switch (R.nextBelow(Depth > 0 ? 12 : 9)) {
    case 0: { // Binary arithmetic.
      static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                   Opcode::And, Opcode::Or,  Opcode::Xor};
      Opcode Op = Ops[R.nextBelow(6)];
      B.binopTo(randVar(), Op, Width::W32, randVar(), randVar());
      break;
    }
    case 1: { // Shift by a bounded count.
      static const Opcode Ops[] = {Opcode::Shl, Opcode::Shr, Opcode::Sar};
      Reg Count = B.constI32(static_cast<int32_t>(R.nextBelow(31)));
      B.binopTo(randVar(), Ops[R.nextBelow(3)], Width::W32, randVar(),
                Count);
      break;
    }
    case 2: { // Division with a non-zero divisor: d = v | 1.
      Reg One = B.constI32(1);
      Reg Divisor = B.or32(randVar(), One);
      B.binopTo(randVar(),
                R.nextChance(1, 2) ? Opcode::Div : Opcode::Rem, Width::W32,
                randVar(), Divisor);
      break;
    }
    case 3: { // Array store, masked index.
      size_t A = R.nextBelow(Arrays.size());
      Reg Idx = B.and32(randVar(), Masks[A]);
      Type ElemTy = A == ByteArrayIndex ? Type::I8 : Type::I32;
      B.arrayStore(ElemTy, Arrays[A], Idx, randVar());
      break;
    }
    case 4: { // Array load (+ canonical cast for bytes).
      size_t A = R.nextBelow(Arrays.size());
      Reg Idx = B.and32(randVar(), Masks[A]);
      if (A == ByteArrayIndex) {
        Reg Raw = B.arrayLoad(Type::I8, Arrays[A], Idx);
        Reg V = B.sext(8, Raw);
        B.copyTo(randVar(), V);
      } else {
        B.arrayLoadTo(randVar(), Type::I32, Arrays[A], Idx);
      }
      break;
    }
    case 5: { // Narrowing cast.
      Reg V = B.sext(R.nextChance(1, 2) ? 8 : 16, randVar());
      B.copyTo(randVar(), V);
      break;
    }
    case 6: { // Float round-trip.
      Reg D = B.i2d(randVar());
      Reg Scale = B.constF64(1.0 + static_cast<double>(R.nextBelow(8)));
      Reg Scaled = B.fmul(D, Scale);
      B.d2iTo(randVar(), Scaled);
      break;
    }
    case 7: // Checksum accumulation.
      accumulate(randVar());
      break;
    case 8: { // Copy shuffle.
      B.copyTo(randVar(), randVar());
      break;
    }
    case 9: { // If/else on a random comparison.
      static const CmpPred Preds[] = {CmpPred::SLT, CmpPred::SLE,
                                      CmpPred::EQ, CmpPred::NE};
      Reg C = B.cmp32(Preds[R.nextBelow(4)], randVar(), randVar());
      if (R.nextChance(1, 2))
        K->ifThen(C, [&] { emitBlock(Depth - 1); });
      else
        K->ifThenElse(C, [&] { emitBlock(Depth - 1); },
                      [&] { emitBlock(Depth - 1); });
      break;
    }
    case 10: { // Bounded counted loop with a fresh counter.
      Reg Counter = K->function()->newReg(Type::I32, "loop");
      Reg Zero = B.constI32(0);
      Reg Trips =
          B.constI32(static_cast<int32_t>(1 + R.nextBelow(6)));
      K->forUp(Counter, Zero, Trips, [&] { emitBlock(Depth - 1); });
      break;
    }
    default: { // Count-down loop indexing an array.
      size_t A = R.nextBelow(Arrays.size());
      Reg Counter = K->function()->newReg(Type::I32, "down");
      Reg Zero = B.constI32(0);
      Reg Trips = B.constI32(static_cast<int32_t>(2 + R.nextBelow(6)));
      K->forDown(Counter, Trips, Zero, [&] {
        Reg Idx = B.and32(Counter, Masks[A]);
        Type ElemTy = A == ByteArrayIndex ? Type::I8 : Type::I32;
        Reg V = B.arrayLoad(ElemTy, Arrays[A], Idx);
        if (ElemTy == Type::I8) {
          Reg S = B.sext(8, V);
          B.copyTo(randVar(), S);
        } else {
          B.copyTo(randVar(), V);
        }
      });
      break;
    }
    }
  }

  void emitBlock(unsigned Depth) {
    unsigned Statements = 2 + R.nextBelow(5);
    for (unsigned Index = 0; Index < Statements; ++Index)
      emitStatement(Depth);
  }

  sxe::RNG R;
  std::unique_ptr<KernelBuilder> K;
  std::vector<Reg> Vars;
  std::vector<Reg> Arrays;
  std::vector<Reg> Masks;
  size_t ByteArrayIndex = 0;
  Reg Acc = NoReg;
};

class RandomProgramSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramSweep, AllVariantsMatchJavaOracle) {
  ProgramGenerator Gen(GetParam());
  std::unique_ptr<Module> Pristine = Gen.generate();

  std::vector<std::string> Problems;
  ASSERT_TRUE(verifyModule(*Pristine, Problems))
      << Problems.front() << "\n"
      << printModule(*Pristine);

  InterpOptions Java;
  Java.Semantics = ExecSemantics::Java;
  Java.MaxSteps = 1u << 22;
  ExecResult Oracle = Interpreter(*Pristine, Java).run("main");
  ASSERT_NE(Oracle.Trap, TrapKind::StepLimit);

  uint64_t BaselineSext = 0;
  for (Variant V : AllVariants) {
    auto Clone = cloneModule(*Pristine);
    runPipeline(*Clone, PipelineConfig::forVariant(V));

    VerifierOptions Options;
    Options.AllowDummyExtends = false;
    Problems.clear();
    ASSERT_TRUE(verifyModule(*Clone, Problems, Options))
        << variantName(V) << ": " << Problems.front();

    InterpOptions Machine;
    Machine.MaxSteps = 1u << 22;
    ExecResult Got = Interpreter(*Clone, Machine).run("main");

    EXPECT_NE(Got.Trap, TrapKind::WildAddress)
        << variantName(V) << ": miscompile detected\n"
        << printModule(*Clone);
    EXPECT_EQ(Got.Trap, Oracle.Trap) << variantName(V);
    if (Oracle.Trap == TrapKind::None) {
      EXPECT_EQ(Got.ReturnValue, Oracle.ReturnValue)
          << variantName(V) << "\n"
          << printModule(*Clone);
    }

    if (V == Variant::Baseline)
      BaselineSext = Got.totalExecutedSext();
    if (V == Variant::All && Oracle.Trap == TrapKind::None) {
      EXPECT_LE(Got.totalExecutedSext(), BaselineSext);
    }
  }

  // The full algorithm must also be sound on the other target models
  // (PPC64's implicit extension; generic64's missing 32-bit compares).
  for (const TargetInfo *Target :
       {&TargetInfo::ppc64(), &TargetInfo::generic64()}) {
    auto Clone = cloneModule(*Pristine);
    runPipeline(*Clone, PipelineConfig::forVariant(Variant::All, *Target));
    InterpOptions Machine;
    Machine.Target = Target;
    Machine.MaxSteps = 1u << 22;
    ExecResult Got = Interpreter(*Clone, Machine).run("main");
    EXPECT_NE(Got.Trap, TrapKind::WildAddress) << Target->name();
    EXPECT_EQ(Got.Trap, Oracle.Trap) << Target->name();
    if (Oracle.Trap == TrapKind::None) {
      EXPECT_EQ(Got.ReturnValue, Oracle.ReturnValue) << Target->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep,
                         ::testing::Range<uint64_t>(1, 81));

} // namespace
