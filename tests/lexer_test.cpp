//===- tests/lexer_test.cpp - Tokenizer unit tests -----------------------------===//

#include "parser/Lexer.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

std::vector<Token> lex(const std::string &Source) {
  std::vector<Token> Tokens;
  std::string Error;
  EXPECT_TRUE(tokenize(Source, Tokens, Error)) << Error;
  return Tokens;
}

TEST(LexerTest, BasicTokens) {
  auto Tokens = lex("func @f(%p: i32) -> i32 { }");
  ASSERT_GE(Tokens.size(), 11u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "func");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::GlobalName);
  EXPECT_EQ(Tokens[1].Text, "f");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::LParen);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::RegName);
  EXPECT_EQ(Tokens[3].Text, "p");
  EXPECT_EQ(Tokens[4].Kind, TokenKind::Colon);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::RParen);
  EXPECT_EQ(Tokens[7].Kind, TokenKind::Arrow);
  EXPECT_EQ(Tokens.back().Kind, TokenKind::End);
}

TEST(LexerTest, NumbersIncludingNegativesAndHex) {
  auto Tokens = lex("-42 0x1F 123");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Number);
  EXPECT_EQ(Tokens[0].Text, "-42");
  EXPECT_EQ(Tokens[1].Text, "0x1F");
  EXPECT_EQ(Tokens[2].Text, "123");
}

TEST(LexerTest, HexFloats) {
  auto Tokens = lex("0x1.8p3 -0x1.921fb54442d18p+1");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "0x1.8p3");
  EXPECT_EQ(Tokens[1].Text, "-0x1.921fb54442d18p+1");
}

TEST(LexerTest, DottedIdentifiers) {
  auto Tokens = lex("add.w32 %lcg.x.12 for.head.0:");
  EXPECT_EQ(Tokens[0].Text, "add.w32");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::RegName);
  EXPECT_EQ(Tokens[1].Text, "lcg.x.12");
  EXPECT_EQ(Tokens[2].Text, "for.head.0");
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Colon);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Tokens = lex("a ; comment to end\nb // another\nc");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
  EXPECT_EQ(Tokens[2].Line, 3u);
}

TEST(LexerTest, Strings) {
  auto Tokens = lex("module \"hello world\"");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[1].Text, "hello world");
}

TEST(LexerTest, ErrorsReported) {
  std::vector<Token> Tokens;
  std::string Error;
  EXPECT_FALSE(tokenize("a ? b", Tokens, Error));
  EXPECT_NE(Error.find("unexpected"), std::string::npos);

  Tokens.clear();
  Error.clear();
  EXPECT_FALSE(tokenize("\"unterminated", Tokens, Error));
  EXPECT_NE(Error.find("unterminated"), std::string::npos);

  Tokens.clear();
  Error.clear();
  EXPECT_FALSE(tokenize("% ", Tokens, Error));
  EXPECT_NE(Error.find("empty name"), std::string::npos);
}

TEST(LexerTest, LineNumbersTrackNewlines) {
  auto Tokens = lex("a\nb\n\nc");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[2].Line, 4u);
}

} // namespace
