//===- tests/runner_test.cpp - Workload harness tests ---------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

TEST(RegistryTest, SeventeenKernelsInPaperOrder) {
  const auto &All = allWorkloads();
  ASSERT_EQ(All.size(), 17u);
  EXPECT_STREQ(All.front().Name, "Numeric Sort");
  EXPECT_STREQ(All[9].Name, "LU Decom.");
  EXPECT_STREQ(All[10].Name, "mtrt");
  EXPECT_STREQ(All.back().Name, "javac");
  EXPECT_EQ(jbytemarkWorkloads().size(), 10u);
  EXPECT_EQ(specjvm98Workloads().size(), 7u);
  EXPECT_NE(findWorkload("compress"), nullptr);
  EXPECT_EQ(findWorkload("no such kernel"), nullptr);
}

TEST(RunnerTest, SubsetOfVariantsAndRowLookup) {
  const Workload *W = findWorkload("Fourier");
  ASSERT_NE(W, nullptr);
  RunnerOptions Options;
  Options.Variants = {Variant::Baseline, Variant::All};
  WorkloadReport Report = runWorkload(*W, Options);

  ASSERT_EQ(Report.Rows.size(), 2u);
  EXPECT_NE(Report.row(Variant::Baseline), nullptr);
  EXPECT_NE(Report.row(Variant::All), nullptr);
  EXPECT_EQ(Report.row(Variant::Array), nullptr);
  EXPECT_TRUE(Report.row(Variant::Baseline)->ChecksumOK);
  EXPECT_TRUE(Report.row(Variant::All)->ChecksumOK);
  EXPECT_EQ(Report.Name, "Fourier");
  EXPECT_EQ(Report.Suite, "jBYTEmark");
}

TEST(RunnerTest, ScaleGrowsTheWorkload) {
  const Workload *W = findWorkload("Bitfield");
  ASSERT_NE(W, nullptr);

  RunnerOptions Small;
  Small.Variants = {Variant::Baseline};
  WorkloadReport R1 = runWorkload(*W, Small);

  RunnerOptions Big = Small;
  Big.Params.Scale = 3;
  WorkloadReport R3 = runWorkload(*W, Big);

  EXPECT_GT(R3.row(Variant::Baseline)->Instructions,
            2 * R1.row(Variant::Baseline)->Instructions);
}

TEST(RunnerTest, ChecksumsAreDeterministic) {
  const Workload *W = findWorkload("IDEA");
  ASSERT_NE(W, nullptr);
  RunnerOptions Options;
  Options.Variants = {Variant::All};
  WorkloadReport A = runWorkload(*W, Options);
  WorkloadReport B = runWorkload(*W, Options);
  EXPECT_EQ(A.OracleChecksum, B.OracleChecksum);
  EXPECT_EQ(A.row(Variant::All)->DynamicSext32,
            B.row(Variant::All)->DynamicSext32);
}

TEST(KernelBuilderTest, ForUpCountsAndVerifies) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  KernelBuilder K(F);
  IRBuilder &B = K.ir();
  Reg Sum = K.varI64(0, "sum");
  Reg I = F->newReg(Type::I32, "i");
  K.forUpConst(I, 3, 11, [&] {
    Reg W = F->newReg(Type::I64, "w");
    B.copyTo(W, B.sext(32, I));
    B.binopTo(Sum, Opcode::Add, Width::W64, Sum, W);
  });
  B.ret(Sum);

  InterpOptions Options;
  Interpreter Interp(*M, Options);
  // 3+4+...+10 = 52.
  EXPECT_EQ(Interp.run("main").ReturnValue, 52u);
}

TEST(KernelBuilderTest, ForDownVisitsDescending) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  KernelBuilder K(F);
  IRBuilder &B = K.ir();
  // Record the first visited value: must be Hi-1.
  Reg First = K.varI32(-1, "first");
  Reg Count = K.varI64(0, "count");
  Reg I = F->newReg(Type::I32, "i");
  Reg Hi = B.constI32(5);
  Reg Lo = B.constI32(0);
  K.forDown(I, Hi, Lo, [&] {
    Reg Unset = B.cmp32(CmpPred::SLT, First, Lo);
    K.ifThen(Unset, [&] { B.copyTo(First, I); });
    Reg One = F->newReg(Type::I64, "one");
    B.constTo(One, 1);
    B.binopTo(Count, Opcode::Add, Width::W64, Count, One);
  });
  Reg F64v = F->newReg(Type::I64, "f64v");
  B.copyTo(F64v, B.sext(32, First));
  Reg Mixed = B.binop(Opcode::Mul, Width::W64, Count, B.constI64(100));
  Reg Out = B.binop(Opcode::Add, Width::W64, Mixed, F64v);
  B.ret(Out);

  InterpOptions Options;
  Interpreter Interp(*M, Options);
  // 5 iterations, first visited value 4 -> 504.
  EXPECT_EQ(Interp.run("main").ReturnValue, 504u);
}

TEST(KernelBuilderTest, FillLCGIsDeterministicAndInRange) {
  auto build = [] {
    auto M = std::make_unique<Module>("m");
    Function *F = M->createFunction("main", Type::I64);
    KernelBuilder K(F);
    IRBuilder &B = K.ir();
    Reg Len = B.constI32(64);
    Reg A = B.newArray(Type::I32, Len, "a");
    K.fillLCG(A, Len, 0xFEED);
    Reg Sum = K.varI64(0, "sum");
    Reg Bad = K.varI64(0, "bad");
    Reg I = F->newReg(Type::I32, "i");
    Reg Zero = B.constI32(0);
    K.forUp(I, Zero, Len, [&] {
      Reg V = B.arrayLoad(Type::I32, A, I);
      Reg Neg = B.cmp32(CmpPred::SLT, V, Zero);
      K.ifThen(Neg, [&] {
        Reg One = F->newReg(Type::I64, "one");
        B.constTo(One, 1);
        B.binopTo(Bad, Opcode::Add, Width::W64, Bad, One);
      });
      Reg W = F->newReg(Type::I64, "w");
      B.copyTo(W, B.sext(32, V));
      B.binopTo(Sum, Opcode::Add, Width::W64, Sum, W);
    });
    Reg Scaled = B.mul64(Bad, B.constI64(1ll << 40));
    B.ret(B.add64(Sum, Scaled));
    return M;
  };

  InterpOptions Options;
  uint64_t A = Interpreter(*build(), Options).run("main").ReturnValue;
  uint64_t B = Interpreter(*build(), Options).run("main").ReturnValue;
  EXPECT_EQ(A, B);
  // No negative values (the shr-based fill) -> the "bad" counter is 0.
  EXPECT_LT(A, 1ull << 40);
}

} // namespace
