//===- tests/golden_file_test.cpp - Golden stats + snapshot documents -----------===//
//
// Runs the full pipeline over the two checked-in example programs for all
// four targets and compares three artifacts per run against goldens in
// tests/golden/:
//
//   <input>-<target>.stats.json     — the sxe.pass-stats.v1 report with
//                                     timings zeroed (IncludeTimings=false),
//                                     locking the schema and every counter;
//   <input>-<target>.dumps.sxir     — the after-each-pass IR snapshots,
//                                     locking the transformation sequence;
//   <input>-<target>.remarks.jsonl  — the sxe.remarks.v1 stream, locking
//                                     the per-extension decisions, theorem
//                                     attribution, and blocking reasons.
//
// Regenerate after an intentional pipeline change with:
//
//   UPDATE_GOLDENS=1 ctest -R golden_file_test
//
//===---------------------------------------------------------------------------===//

#include "obs/Remarks.h"
#include "parser/Parser.h"
#include "pm/InstrumentedPipeline.h"
#include "pm/Report.h"
#include "support/Json.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <gtest/gtest.h>

using namespace sxe;

namespace {

bool updateGoldens() {
  const char *Raw = std::getenv("UPDATE_GOLDENS");
  return Raw && Raw[0] && Raw[0] != '0';
}

std::string readTextFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path);
  Ok = static_cast<bool>(In);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// One golden artifact: compare against the checked-in file, or rewrite
/// it when UPDATE_GOLDENS is set.
void checkGolden(const std::string &Path, const std::string &Actual) {
  if (updateGoldens()) {
    ASSERT_TRUE(writeTextFile(Path, Actual)) << "cannot write " << Path;
    return;
  }
  bool Ok = false;
  std::string Expected = readTextFile(Path, Ok);
  ASSERT_TRUE(Ok) << Path
                  << " is missing; regenerate with UPDATE_GOLDENS=1";
  EXPECT_EQ(Expected, Actual)
      << Path << " is stale; regenerate with UPDATE_GOLDENS=1 if the "
      << "pipeline change is intentional";
}

struct GoldenCase {
  const char *Stem;   ///< Input file stem under examples/ir/.
  const TargetInfo *Target;
};

void runGoldenCase(const GoldenCase &Case) {
  std::string InputPath =
      std::string(SXE_SOURCE_DIR) + "/examples/ir/" + Case.Stem + ".sxir";
  bool Ok = false;
  std::string Text = readTextFile(InputPath, Ok);
  ASSERT_TRUE(Ok) << InputPath;

  ParseResult Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;

  PipelineConfig Config =
      PipelineConfig::forVariant(Variant::All, *Case.Target);
  PassManagerOptions Options;
  Options.CaptureSnapshots = true;
  Options.CollectRemarks = true;
  InstrumentedPipelineResult Result =
      runInstrumentedPipeline(*Parsed.M, Config, Options);
  ASSERT_TRUE(Result.Ok);

  StatsReportInfo Info;
  Info.ModuleName = Parsed.M->name();
  Info.VariantLabel = variantName(Variant::All);
  Info.TargetName = Case.Target->name();
  Info.IncludeTimings = false; // Deterministic golden mode.
  std::string StatsJson = statsReportJson(Result.Stats, Result.Timings, Info);

  std::string Dumps;
  for (const PassSnapshot &S : Result.Snapshots)
    Dumps += "; === after " + S.PassName + " ===\n" + S.IR;

  std::string GoldenDir = std::string(SXE_SOURCE_DIR) + "/tests/golden/";
  std::string StemTarget = std::string(Case.Stem) + "-" + Case.Target->name();
  checkGolden(GoldenDir + StemTarget + ".stats.json", StatsJson);
  checkGolden(GoldenDir + StemTarget + ".dumps.sxir", Dumps);
  checkGolden(GoldenDir + StemTarget + ".remarks.jsonl",
              remarksToJsonl(Result.Remarks.remarks()));
}

} // namespace

TEST(GoldenFileTest, Figure3IA64) {
  runGoldenCase({"figure3", &TargetInfo::ia64()});
}
TEST(GoldenFileTest, Figure3PPC64) {
  runGoldenCase({"figure3", &TargetInfo::ppc64()});
}
TEST(GoldenFileTest, Figure3Generic64) {
  runGoldenCase({"figure3", &TargetInfo::generic64()});
}
TEST(GoldenFileTest, Figure3X8664) {
  runGoldenCase({"figure3", &TargetInfo::x86_64()});
}
TEST(GoldenFileTest, CountdownIA64) {
  runGoldenCase({"countdown", &TargetInfo::ia64()});
}
TEST(GoldenFileTest, CountdownPPC64) {
  runGoldenCase({"countdown", &TargetInfo::ppc64()});
}
TEST(GoldenFileTest, CountdownGeneric64) {
  runGoldenCase({"countdown", &TargetInfo::generic64()});
}
TEST(GoldenFileTest, CountdownX8664) {
  runGoldenCase({"countdown", &TargetInfo::x86_64()});
}
