//===- tests/elimination_test.cpp - Targeted elimination behaviour ---------------===//
//
// Unit-level checks of the conversion and elimination machinery beyond the
// paper's worked examples: gen-def vs gen-use placement, the AnalyzeDEF
// Case 1 facts (AND with a positive operand, logical shifts), no-self-
// justification masking, 8/16-bit extensions, cross-register extensions
// becoming copies, and target sensitivity (IA64 vs PPC64 loads).
//
//===--------------------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "sxe/Conversion64.h"
#include "sxe/Elimination.h"
#include "sxe/FirstAlgorithm.h"
#include "sxe/Insertion.h"
#include "sxe/OrderDetermination.h"
#include "sxe/Pipeline.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

using namespace sxe;
using namespace sxe::test;

namespace {

/// Runs the basic ud/du elimination (no insertion/order/array) over F.
EliminationStats eliminateBasic(Function &F,
                                const TargetInfo &T = TargetInfo::ia64(),
                                bool ArrayTheorems = false) {
  insertDummyExtends(F);
  std::vector<Instruction *> Order = extensionsInReverseDFS(F);
  EliminationOptions Options;
  Options.Target = &T;
  Options.EnableArrayTheorems = ArrayTheorems;
  return runElimination(F, Order, Options);
}

TEST(ConversionTest, GenDefInsertsAfterUnextendedDefs) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::F64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.add32(P, P, "x"); // Not guaranteed extended -> extend after.
  Reg C = B.cmp32(CmpPred::SLT, X, P, "c"); // 0/1 -> no extend.
  Reg D = B.i2d(X, "d");
  B.ret(D);
  (void)C;

  unsigned Generated =
      runConversion64(*F, TargetInfo::ia64(), GenPolicy::AfterDef);
  EXPECT_EQ(Generated, 1u);
  // The extension directly follows the add.
  auto It = F->entryBlock()->begin();
  EXPECT_EQ(It->opcode(), Opcode::Add);
  ++It;
  EXPECT_EQ(It->opcode(), Opcode::Sext32);
}

TEST(ConversionTest, GenUseInsertsBeforeRequiringUsesOnly) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::F64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.add32(P, P, "x");
  Reg Y = B.add32(X, P, "y"); // Plain W32 use: no extension.
  Reg D = B.i2d(Y, "d");      // Requiring use: one extension before.
  B.ret(D);

  unsigned Generated =
      runConversion64(*F, TargetInfo::ia64(), GenPolicy::BeforeUse);
  EXPECT_EQ(Generated, 1u);
  // It sits immediately before the i2d.
  const Instruction *Prev = nullptr;
  for (const Instruction &I : *F->entryBlock()) {
    if (I.opcode() == Opcode::I2D) {
      ASSERT_NE(Prev, nullptr);
      EXPECT_TRUE(Prev->isSext());
    }
    Prev = &I;
  }
}

TEST(ConversionTest, GenUseSkipsObviouslyExtendedSources) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::F64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.sext(32, P, "x"); // Extended by construction.
  Reg D = B.i2d(X, "d");
  B.ret(D);

  EXPECT_EQ(runConversion64(*F, TargetInfo::ia64(), GenPolicy::BeforeUse),
            0u);
}

TEST(ConversionTest, ShortLoadNeedsNoExtendOnPPC64) {
  auto build = [] {
    auto M = std::make_unique<Module>("m");
    Function *F = M->createFunction("f", Type::I32);
    Reg A = F->addParam(Type::ArrayRef, "a");
    IRBuilder B(F);
    B.startBlock("entry");
    Reg Zero = B.constI32(0);
    Reg V = B.arrayLoad(Type::I16, A, Zero, "v");
    Reg W = B.add32(V, V, "w");
    B.ret(W);
    return M;
  };

  auto OnIA64 = build();
  runConversion64(*OnIA64->findFunction("f"), TargetInfo::ia64(),
                  GenPolicy::AfterDef);
  // IA64 zero-extends: the short needs a sext16 (plus the add's sext32).
  EXPECT_EQ(countSext(*OnIA64->findFunction("f")), 2u);

  auto OnPPC = build();
  runConversion64(*OnPPC->findFunction("f"), TargetInfo::ppc64(),
                  GenPolicy::AfterDef);
  // PPC64 lha sign-extends: only the add needs one.
  EXPECT_EQ(countSext(*OnPPC->findFunction("f")), 1u);
}

TEST(EliminationTest, AndWithPositiveConstantDischargesExtension) {
  // The paper's AnalyzeDEF Case 1 example: j = j & 0x0fffffff is known
  // sign-extended, so a later extension of j dies even when a requiring
  // use follows.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::F64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C = B.constI32(0x0FFFFFFF);
  Reg J = B.and32(P, C, "j");
  B.sextTo(J, 32, J); // Candidate.
  Reg D = B.i2d(J, "d");
  B.ret(D);

  EliminationStats S = eliminateBasic(*F);
  EXPECT_EQ(S.Eliminated, 1u);
  EXPECT_EQ(countSext(*F), 0u);
}

TEST(EliminationTest, AndWithGarbageOperandsKeepsExtension) {
  // x & y where neither side is provably non-negative: the AND result has
  // garbage upper bits, so the extension before i2d must stay.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::F64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.add32(P, P, "x"); // Garbage upper bits.
  Reg Y = B.mul32(P, P, "y"); // Garbage upper bits, any sign.
  Reg J = B.and32(X, Y, "j");
  B.sextTo(J, 32, J);
  Reg D = B.i2d(J, "d");
  B.ret(D);

  eliminateBasic(*F);
  EXPECT_EQ(countSext(*F), 1u);
}

TEST(EliminationTest, ShrResultIsExtendedWhenCountNonZero) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::F64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Eight = B.constI32(8);
  Reg X = B.shr32(P, Eight, "x"); // [0, 2^24): extended by lowering.
  B.sextTo(X, 32, X);
  Reg D = B.i2d(X, "d");
  B.ret(D);

  eliminateBasic(*F);
  EXPECT_EQ(countSext(*F), 0u);
}

TEST(EliminationTest, NoSelfJustificationThroughArrayTheorems) {
  // A subscript whose ONLY extendedness witness is the extension under
  // analysis must keep it: i's defs are a mul (never extended), so the
  // extension in front of a[i] cannot remove itself.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg A = F->addParam(Type::ArrayRef, "a");
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg I = B.mul32(P, P, "i");
  B.sextTo(I, 32, I); // Candidate that must survive.
  Reg V = B.arrayLoad(Type::I32, A, I, "v");
  B.ret(V);

  eliminateBasic(*F, TargetInfo::ia64(), /*ArrayTheorems=*/true);
  EXPECT_EQ(countSext(*F), 1u);
}

TEST(EliminationTest, ZeroUpperSubscriptNeedsNoExtension) {
  // Theorem 1: on IA64 an int load is zero-extended; using it directly
  // as a subscript discharges the extension.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg A = F->addParam(Type::ArrayRef, "a");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg I = B.arrayLoad(Type::I32, A, Zero, "i");
  B.sextTo(I, 32, I);
  Reg V = B.arrayLoad(Type::I32, A, I, "v");
  B.ret(V);

  eliminateBasic(*F, TargetInfo::ia64(), /*ArrayTheorems=*/true);
  EXPECT_EQ(countSext(*F), 0u);
}

TEST(EliminationTest, SixteenBitExtensionEliminatedBySameAlgorithm) {
  // "8-bit and 16-bit sign extensions are also eliminated based on the
  // same algorithm": two consecutive sext16 of the same register.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I16, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = F->newReg(Type::I16, "x");
  B.copyTo(X, P);
  B.sextTo(X, 16, X); // Source is a canonical I16 parameter: redundant.
  Reg Y = B.add32(X, X, "y");
  B.ret(Y);

  EliminationStats S = eliminateBasic(*F);
  EXPECT_EQ(S.Eliminated, 1u);
  EXPECT_EQ(countSext(*F), 0u);
}

TEST(EliminationTest, ByteLoadKeepsSemanticSext8) {
  // The raw byte is [0,255]; sext8 changes values >= 128, and the add32
  // consumes those data bits: the extension must stay.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg A = F->addParam(Type::ArrayRef, "a");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg Raw = B.arrayLoad(Type::I8, A, Zero, "raw");
  B.sextTo(Raw, 8, Raw);
  Reg Y = B.add32(Raw, Raw, "y");
  B.ret(Y);

  eliminateBasic(*F);
  EXPECT_EQ(countSext(*F), 1u);
}

TEST(EliminationTest, CrossRegisterExtensionBecomesCopy) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I8, "p"); // Canonical I8 parameter.
  IRBuilder B(F);
  B.startBlock("entry");
  Reg V = B.sext(8, P, "v"); // Redundant (p canonical), but cross-reg.
  Reg Y = B.add32(V, V, "y");
  B.ret(Y);

  EliminationStats S = eliminateBasic(*F);
  EXPECT_EQ(S.Eliminated, 1u);
  EXPECT_EQ(countSext(*F), 0u);
  // The value move survives as a copy.
  unsigned Copies = 0;
  for (const Instruction &I : *F->entryBlock())
    Copies += I.opcode() == Opcode::Copy ? 1 : 0;
  EXPECT_EQ(Copies, 1u);
}

TEST(EliminationTest, CallArgumentRequiresExtension) {
  auto M = std::make_unique<Module>("m");
  Function *Callee = M->createFunction("g", Type::I32);
  {
    Reg Q = Callee->addParam(Type::I32, "q");
    IRBuilder B(Callee);
    B.startBlock("entry");
    B.ret(Q);
  }
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.add32(P, P, "x");
  B.sextTo(X, 32, X); // Needed: the ABI passes arguments extended.
  Reg R = B.call(Callee, {X}, "r");
  B.ret(R);

  eliminateBasic(*F);
  EXPECT_EQ(countSext(*F), 1u);
}

TEST(EliminationTest, RetOfExtendedValueDischarges) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.sar32(P, B.constI32(3), "x"); // Sign extract: extended.
  B.sextTo(X, 32, X);
  B.ret(X);

  eliminateBasic(*F);
  EXPECT_EQ(countSext(*F), 0u);
}

TEST(FirstAlgorithmTest, EliminatesWhenNoDemand) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.add32(P, P, "x");
  B.sextTo(X, 32, X);
  Reg Y = B.and32(X, P, "y"); // W32 use: no demand.
  B.ret(Y);                   // I32 return demands Y, not X.

  unsigned Removed = runFirstAlgorithm(*F, TargetInfo::ia64());
  EXPECT_EQ(Removed, 1u);
}

TEST(FirstAlgorithmTest, KeepsExtensionDemandedByArrayIndex) {
  // The paper's first limitation: the backward-dataflow algorithm cannot
  // discharge subscript extensions.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg A = F->addParam(Type::ArrayRef, "a");
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg I = B.and32(P, B.constI32(7), "i");
  B.sextTo(I, 32, I);
  Reg V = B.arrayLoad(Type::I32, A, I, "v");
  B.ret(V);

  EXPECT_EQ(runFirstAlgorithm(*F, TargetInfo::ia64()), 0u);
  EXPECT_EQ(countSext(*F), 1u);
}

TEST(PipelineTest, StatsAccountPhases) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(16);
  Reg A = B.newArray(Type::I32, Len, "a");
  Reg Zero = B.constI32(0);
  Reg I = F->newReg(Type::I32, "i");
  B.copyTo(I, Zero);
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Head);
  B.setBlock(Head);
  Reg C = B.cmp32(CmpPred::SLT, I, Len);
  B.br(C, Body, Exit);
  B.setBlock(Body);
  B.arrayStore(Type::I32, A, I, I);
  Reg One = B.constI32(1);
  B.binopTo(I, Opcode::Add, Width::W32, I, One);
  B.jmp(Head);
  B.setBlock(Exit);
  Reg W = F->newReg(Type::I64, "w");
  B.copyTo(W, I);
  B.ret(W);

  PipelineStats Stats =
      runPipeline(*M, PipelineConfig::forVariant(Variant::All));
  EXPECT_GT(Stats.ExtensionsGenerated, 0u);
  EXPECT_GT(Stats.DummiesInserted, 0u);
  EXPECT_EQ(Stats.DummiesInserted, Stats.DummiesRemoved);
  EXPECT_GT(Stats.TotalNanos, 0u);
  EXPECT_LE(Stats.ChainCreationNanos + Stats.SxeOptNanos, Stats.TotalNanos);
  ASSERT_TRUE(moduleVerifies(*M, /*AllowDummies=*/false));
}

TEST(PipelineTest, Generic64WithoutWordComparesKeepsMore) {
  // Section 3's caveat: the bounds check (and every W32 compare) is only
  // extension-free because the target has 32-bit compares. On the
  // hypothetical generic64 target, compares become requiring uses and
  // the loop's extension survives.
  auto build = [] {
    auto M = std::make_unique<Module>("m");
    Function *F = M->createFunction("main", Type::I64);
    IRBuilder B(F);
    B.startBlock("entry");
    Reg Len = B.constI32(64);
    Reg A = B.newArray(Type::I32, Len, "a");
    Reg Zero = B.constI32(0);
    Reg I = F->newReg(Type::I32, "i");
    B.copyTo(I, Zero);
    Reg Acc = F->newReg(Type::I32, "acc");
    B.copyTo(Acc, Zero);
    BasicBlock *Head = F->createBlock("head");
    BasicBlock *Body = F->createBlock("body");
    BasicBlock *Exit = F->createBlock("exit");
    B.jmp(Head);
    B.setBlock(Head);
    // The loop condition also tests acc, a multiply result no range or
    // extendedness fact can discharge: on generic64 the W32 compare
    // itself demands a canonical register.
    Reg InRange = B.cmp32(CmpPred::SLT, I, Len);
    Reg Sentinel = B.constI32(0x5EED);
    Reg NotDone = B.cmp32(CmpPred::NE, Acc, Sentinel);
    Reg C = B.and32(InRange, NotDone);
    B.br(C, Body, Exit);
    B.setBlock(Body);
    Reg V = B.arrayLoad(Type::I32, A, I, "v");
    Reg Mixed = B.mul32(Acc, V, "mixed");
    B.copyTo(Acc, Mixed);
    Reg One = B.constI32(1);
    B.binopTo(I, Opcode::Add, Width::W32, I, One);
    B.jmp(Head);
    B.setBlock(Exit);
    Reg W = F->newReg(Type::I64, "w");
    B.copyTo(W, I);
    B.ret(W);
    return M;
  };

  auto IA64 = build();
  runPipeline(*IA64, PipelineConfig::forVariant(Variant::All,
                                                TargetInfo::ia64()));
  auto Generic = build();
  runPipeline(*Generic, PipelineConfig::forVariant(
                            Variant::All, TargetInfo::generic64()));

  // The comparison operand (acc or i) needs extension on generic64 but
  // not on IA64: strictly more extensions survive.
  EXPECT_GT(countSext(*Generic->findFunction("main")),
            countSext(*IA64->findFunction("main")));

  // Both still compute the same value.
  InterpOptions Options;
  EXPECT_EQ(Interpreter(*IA64, Options).run("main").ReturnValue,
            Interpreter(*Generic, Options).run("main").ReturnValue);
}

TEST(PipelineTest, PPC64NeedsFewerExtensionsThanIA64AtBaseline) {
  // Implicit sign extension (lwa) removes the post-load extensions that
  // IA64 needs; the baseline static counts reflect it.
  auto build = [] {
    auto M = std::make_unique<Module>("m");
    Function *F = M->createFunction("main", Type::I64);
    IRBuilder B(F);
    B.startBlock("entry");
    Reg Len = B.constI32(8);
    Reg A = B.newArray(Type::I32, Len, "a");
    Reg Zero = B.constI32(0);
    Reg V = B.arrayLoad(Type::I32, A, Zero, "v");
    Reg W = F->newReg(Type::I64, "w");
    B.copyTo(W, V);
    B.ret(W);
    return M;
  };

  auto IA64 = build();
  runPipeline(*IA64, PipelineConfig::forVariant(Variant::Baseline,
                                                TargetInfo::ia64()));
  auto PPC = build();
  runPipeline(*PPC, PipelineConfig::forVariant(Variant::Baseline,
                                               TargetInfo::ppc64()));
  EXPECT_GT(countSext(*IA64->findFunction("main")),
            countSext(*PPC->findFunction("main")));
}

} // namespace
