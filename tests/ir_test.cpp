//===- tests/ir_test.cpp - IR core unit tests ----------------------------------===//

#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

using namespace sxe;
using namespace sxe::test;

namespace {

TEST(TypeTest, Names) {
  EXPECT_STREQ(typeName(Type::I32), "i32");
  EXPECT_STREQ(typeName(Type::ArrayRef), "arrayref");
  EXPECT_STREQ(typeName(Type::U16), "u16");
}

TEST(TypeTest, Classification) {
  EXPECT_TRUE(isIntegerType(Type::I8));
  EXPECT_TRUE(isIntegerType(Type::U16));
  EXPECT_FALSE(isIntegerType(Type::F64));
  EXPECT_FALSE(isIntegerType(Type::ArrayRef));
  EXPECT_TRUE(isSubRegisterIntType(Type::I32));
  EXPECT_FALSE(isSubRegisterIntType(Type::I64));
  EXPECT_EQ(intTypeBits(Type::I16), 16u);
  EXPECT_EQ(elementSizeBytes(Type::F64), 8u);
}

TEST(OpcodeTest, Traits) {
  EXPECT_TRUE(opcodeInfo(Opcode::Br).IsTerminator);
  EXPECT_FALSE(opcodeInfo(Opcode::Add).IsTerminator);
  EXPECT_TRUE(opcodeInfo(Opcode::Add).IsCommutative);
  EXPECT_FALSE(opcodeInfo(Opcode::Sub).IsCommutative);
  EXPECT_TRUE(opcodeInfo(Opcode::Div).MayTrap);
  EXPECT_EQ(opcodeInfo(Opcode::ArrayStore).NumOperands, 3);
  EXPECT_EQ(opcodeInfo(Opcode::Call).NumOperands, -1);
  EXPECT_TRUE(isSextOpcode(Opcode::Sext16));
  EXPECT_FALSE(isSextOpcode(Opcode::Zext32));
  EXPECT_EQ(extensionBits(Opcode::Sext8), 8u);
  EXPECT_EQ(extensionBits(Opcode::Zext32), 32u);
}

TEST(OpcodeTest, PredicateAlgebra) {
  EXPECT_EQ(swapCmpPred(CmpPred::SLT), CmpPred::SGT);
  EXPECT_EQ(swapCmpPred(CmpPred::EQ), CmpPred::EQ);
  EXPECT_EQ(negateCmpPred(CmpPred::SLE), CmpPred::SGT);
  EXPECT_EQ(negateCmpPred(CmpPred::NE), CmpPred::EQ);
  EXPECT_EQ(negateCmpPred(CmpPred::ULT), CmpPred::UGE);
}

std::unique_ptr<Module> smallModule() {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg One = B.constI32(1);
  Reg Sum = B.add32(P, One, "sum");
  B.ret(Sum);
  return M;
}

TEST(IRBuilderTest, BuildsVerifiableFunction) {
  auto M = smallModule();
  ASSERT_TRUE(moduleVerifies(*M));
  Function *F = M->findFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->numParams(), 1u);
  EXPECT_EQ(F->numBlocks(), 1u);
  EXPECT_EQ(F->countInstructions(), 3u);
}

TEST(IRBuilderTest, NarrowLoadsGetNarrowRegisters) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  Reg A = F->addParam(Type::ArrayRef, "a");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg ByteVal = B.arrayLoad(Type::I8, A, Zero);
  Reg ShortVal = B.arrayLoad(Type::I16, A, Zero);
  Reg CharVal = B.arrayLoad(Type::U16, A, Zero);
  Reg IntVal = B.arrayLoad(Type::I32, A, Zero);
  EXPECT_EQ(F->regType(ByteVal), Type::I8);
  EXPECT_EQ(F->regType(ShortVal), Type::I16);
  EXPECT_EQ(F->regType(CharVal), Type::U16);
  EXPECT_EQ(F->regType(IntVal), Type::I32);
  B.retVoid();
}

TEST(BasicBlockTest, InsertEraseKeepOrder) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C1 = B.constI32(1);
  Reg C2 = B.constI32(2);
  B.retVoid();
  (void)C1;
  (void)C2;

  BasicBlock *BB = F->entryBlock();
  EXPECT_EQ(BB->size(), 3u);

  Instruction &First = BB->front();
  auto Extra = std::make_unique<Instruction>(Opcode::ConstInt);
  Extra->setDest(F->newReg(Type::I32));
  Extra->setType(Type::I32);
  Extra->setIntValue(7);
  Instruction *Placed = BB->insertAfter(&First, std::move(Extra));
  EXPECT_EQ(BB->size(), 4u);

  // The inserted instruction is second.
  auto It = BB->begin();
  ++It;
  EXPECT_EQ(&*It, Placed);

  BB->erase(Placed);
  EXPECT_EQ(BB->size(), 3u);
}

TEST(ClonerTest, PreservesStructureAndIds) {
  auto M = smallModule();
  auto Clone = cloneModule(*M);

  Function *Original = M->findFunction("f");
  Function *Copied = Clone->findFunction("f");
  ASSERT_NE(Copied, nullptr);
  EXPECT_EQ(printFunction(*Original), printFunction(*Copied));

  // Instruction ids transfer (the profile key contract).
  auto OIt = Original->entryBlock()->begin();
  auto CIt = Copied->entryBlock()->begin();
  for (; OIt != Original->entryBlock()->end(); ++OIt, ++CIt)
    EXPECT_EQ(OIt->id(), CIt->id());
}

TEST(ClonerTest, RemapsCallTargets) {
  auto M = std::make_unique<Module>("m");
  Function *Callee = M->createFunction("callee", Type::I32);
  {
    Reg P = Callee->addParam(Type::I32, "p");
    IRBuilder B(Callee);
    B.startBlock("entry");
    B.ret(P);
  }
  Function *Caller = M->createFunction("caller", Type::I32);
  {
    IRBuilder B(Caller);
    B.startBlock("entry");
    Reg C = B.constI32(5);
    Reg R = B.call(Callee, {C});
    B.ret(R);
  }

  auto Clone = cloneModule(*M);
  const Function *ClonedCaller = Clone->findFunction("caller");
  const Function *ClonedCallee = Clone->findFunction("callee");
  for (const auto &BB : ClonedCaller->blocks())
    for (const Instruction &I : *BB)
      if (I.opcode() == Opcode::Call) {
        EXPECT_EQ(I.callee(), ClonedCallee);
      }
}

TEST(VerifierTest, CatchesMissingTerminator) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  IRBuilder B(F);
  B.startBlock("entry");
  B.constI32(1); // No terminator.
  std::vector<std::string> Problems;
  EXPECT_FALSE(verifyModule(*M, Problems));
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems.front().find("terminator"), std::string::npos);
}

TEST(VerifierTest, CatchesOutOfRangeConstant) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C = B.constI32(1);
  B.retVoid();
  // Corrupt: i32 constant with an out-of-range payload.
  for (Instruction &I : *F->entryBlock())
    if (I.opcode() == Opcode::ConstInt)
      I.setIntValue(int64_t(1) << 40);
  (void)C;
  std::vector<std::string> Problems;
  EXPECT_FALSE(verifyModule(*M, Problems));
}

TEST(VerifierTest, DummyPolicy) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  auto Dummy = std::make_unique<Instruction>(Opcode::JustExtended);
  Dummy->setDest(P);
  Dummy->addOperand(P);
  F->entryBlock()->append(std::move(Dummy));
  B.ret(P);

  std::vector<std::string> Problems;
  VerifierOptions Allow;
  Allow.AllowDummyExtends = true;
  EXPECT_TRUE(verifyModule(*M, Problems, Allow));
  VerifierOptions Forbid;
  Forbid.AllowDummyExtends = false;
  EXPECT_FALSE(verifyModule(*M, Problems, Forbid));
}

TEST(PrinterTest, RegisterNamesAreUniqueAndStable) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::Void);
  Reg A = F->newReg(Type::I32, "x");
  Reg B = F->newReg(Type::I32, "x"); // Duplicate declared name.
  EXPECT_NE(printableRegName(*F, A), printableRegName(*F, B));
}

TEST(InstructionTest, MorphToCopyKeepsIdentity) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg V = B.sext(8, P, "v");
  B.ret(V);

  Instruction *Ext = nullptr;
  for (Instruction &I : *F->entryBlock())
    if (I.isSext())
      Ext = &I;
  ASSERT_NE(Ext, nullptr);
  uint32_t Id = Ext->id();
  Ext->morphToCopy();
  EXPECT_EQ(Ext->opcode(), Opcode::Copy);
  EXPECT_EQ(Ext->id(), Id);
  EXPECT_EQ(Ext->operand(0), P);
  ASSERT_TRUE(moduleVerifies(*M));
}

/// Two-block fixture for the numbering/epoch tests.
std::unique_ptr<Module> makeTwoBlockFunction() {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg N = F->addParam(Type::I32, "n");
  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  BasicBlock *Exit = F->createBlock("exit");
  Reg T = B.add32(N, B.constI32(1), "t");
  B.jmp(Exit);
  B.setBlock(Exit);
  B.ret(T);
  (void)Entry;
  return M;
}

TEST(NumberingTest, AssignsDenseLayoutOrder) {
  auto M = makeTwoBlockFunction();
  Function &F = *M->functions().front();

  const Function::Numbering &Numbers = F.numberInstructions();
  EXPECT_EQ(Numbers.NumBlocks, 2u);
  EXPECT_EQ(Numbers.NumInsts, F.countInstructions());

  uint32_t ExpectBlock = 0, ExpectInst = 0;
  for (const auto &BB : F.blocks()) {
    EXPECT_EQ(BB->num(), ExpectBlock++);
    for (const Instruction &I : *BB)
      EXPECT_EQ(I.num(), ExpectInst++);
  }
  EXPECT_EQ(ExpectInst, Numbers.NumInsts);
}

TEST(NumberingTest, CachedUntilMutationThenReassigned) {
  auto M = makeTwoBlockFunction();
  Function &F = *M->functions().front();

  F.numberInstructions();
  uint64_t Epoch = F.irEpoch();
  F.numberInstructions(); // Cached: no epoch movement, same numbers.
  EXPECT_EQ(F.irEpoch(), Epoch);

  // A new instruction reads Unnumbered until the next numbering.
  BasicBlock *Entry = F.entryBlock();
  Reg Tmp = F.newReg(Type::I32, "tmp");
  Instruction *Nop = F.newInstruction(Opcode::Copy);
  Nop->setDest(Tmp);
  Nop->addOperand(Tmp);
  Entry->insertBefore(&*Entry->begin(), Nop);
  EXPECT_EQ(Nop->num(), Instruction::Unnumbered);
  EXPECT_GT(F.irEpoch(), Epoch);

  const Function::Numbering &After = F.numberInstructions();
  EXPECT_EQ(Nop->num(), 0u) << "layout order: new head instruction is 0";
  EXPECT_EQ(After.NumInsts, F.countInstructions());
}

TEST(EpochTest, InstructionMutationsLeaveCfgEpochAlone) {
  auto M = makeTwoBlockFunction();
  Function &F = *M->functions().front();
  uint64_t Ir = F.irEpoch(), Cfg = F.cfgEpoch();

  BasicBlock *Entry = F.entryBlock();
  Instruction *First = &*Entry->begin();
  Reg Tmp = F.newReg(Type::I32, "tmp");
  Instruction *Nop = F.newInstruction(Opcode::Copy);
  Nop->setDest(Tmp);
  Nop->addOperand(Tmp);
  Entry->insertBefore(First, Nop);
  EXPECT_GT(F.irEpoch(), Ir);
  EXPECT_EQ(F.cfgEpoch(), Cfg) << "insert must not look like a CFG change";

  Ir = F.irEpoch();
  Entry->erase(Nop);
  EXPECT_GT(F.irEpoch(), Ir);
  EXPECT_EQ(F.cfgEpoch(), Cfg);
}

TEST(EpochTest, BlockMutationsBumpBothEpochs) {
  auto M = makeTwoBlockFunction();
  Function &F = *M->functions().front();
  uint64_t Ir = F.irEpoch(), Cfg = F.cfgEpoch();

  BasicBlock *BB = F.createBlock("extra");
  EXPECT_GT(F.irEpoch(), Ir);
  EXPECT_GT(F.cfgEpoch(), Cfg);

  Ir = F.irEpoch();
  Cfg = F.cfgEpoch();
  F.eraseBlock(BB);
  EXPECT_GT(F.irEpoch(), Ir);
  EXPECT_GT(F.cfgEpoch(), Cfg);
}

TEST(ArenaIRTest, InstructionsLiveInTheFunctionArena) {
  auto M = makeTwoBlockFunction();
  Function &F = *M->functions().front();
  EXPECT_GT(F.arena().bytesAllocated(), 0u);

  // Ids are insertion-assigned and survive unrelated erasures.
  BasicBlock *Entry = F.entryBlock();
  Instruction *First = &*Entry->begin();
  uint32_t FirstId = First->id();
  Reg Tmp = F.newReg(Type::I32, "tmp");
  Instruction *Nop = F.newInstruction(Opcode::Copy);
  Nop->setDest(Tmp);
  Nop->addOperand(Tmp);
  Entry->insertBefore(First, Nop);
  Entry->erase(Nop);
  EXPECT_EQ(First->id(), FirstId);
  ASSERT_TRUE(moduleVerifies(*M));
}

} // namespace
