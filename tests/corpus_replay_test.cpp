//===- tests/corpus_replay_test.cpp - Pinned-program regression corpus ----------===//
//
// Replays the checked-in programs under tests/corpus/ — hand-picked
// outputs of the random_program_test generator — through every pipeline
// variant with the same differential checks the fuzzer applies:
//
//   - the post-pipeline module verifies with no dummy extensions left,
//   - machine-semantics execution matches the Java-semantics oracle
//     (checksum AND trap kind), with no wild addresses,
//   - the full algorithm never executes more conversions (sign/zero
//     extensions and truncations) than baseline,
//   - the optimization-remarks stream is consistent with the pass
//     counters: eliminated remarks sum to sext_eliminated +
//     zext_eliminated + trunc_eliminated, and the per-remark theorem
//     attribution sums to theorem1..4_fired.
//
// Unlike the fuzzer, these programs never change, so a failure here
// bisects cleanly to the offending pipeline commit.
//
//===---------------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Cloner.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "obs/Remarks.h"
#include "parser/Parser.h"
#include "pm/InstrumentedPipeline.h"
#include "sxe/Pipeline.h"

#include <fstream>
#include <sstream>
#include <gtest/gtest.h>

using namespace sxe;

namespace {

std::unique_ptr<Module> loadCorpusFile(const std::string &Name) {
  std::string Path =
      std::string(SXE_SOURCE_DIR) + "/tests/corpus/" + Name + ".sxir";
  std::ifstream In(Path);
  EXPECT_TRUE(static_cast<bool>(In)) << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  ParseResult Parsed = parseModule(Buffer.str());
  EXPECT_TRUE(Parsed.ok()) << Path << ": " << Parsed.Error;
  return std::move(Parsed.M);
}

class CorpusReplay : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(CorpusReplay, AllVariantsMatchJavaOracle) {
  std::unique_ptr<Module> Pristine = loadCorpusFile(GetParam());
  ASSERT_NE(Pristine, nullptr);

  std::vector<std::string> Problems;
  ASSERT_TRUE(verifyModule(*Pristine, Problems)) << Problems.front();

  InterpOptions Java;
  Java.Semantics = ExecSemantics::Java;
  Java.MaxSteps = 1u << 22;
  ExecResult Oracle = Interpreter(*Pristine, Java).run("main");
  ASSERT_NE(Oracle.Trap, TrapKind::StepLimit);

  uint64_t BaselineSext = 0;
  for (Variant V : AllVariants) {
    auto Clone = cloneModule(*Pristine);
    runPipeline(*Clone, PipelineConfig::forVariant(V));

    VerifierOptions Options;
    Options.AllowDummyExtends = false;
    Problems.clear();
    ASSERT_TRUE(verifyModule(*Clone, Problems, Options))
        << variantName(V) << ": " << Problems.front();

    InterpOptions Machine;
    Machine.MaxSteps = 1u << 22;
    ExecResult Got = Interpreter(*Clone, Machine).run("main");

    EXPECT_NE(Got.Trap, TrapKind::WildAddress)
        << variantName(V) << ": miscompile detected\n"
        << printModule(*Clone);
    EXPECT_EQ(Got.Trap, Oracle.Trap) << variantName(V);
    if (Oracle.Trap == TrapKind::None) {
      EXPECT_EQ(Got.ReturnValue, Oracle.ReturnValue) << variantName(V);
    }

    if (V == Variant::Baseline)
      BaselineSext = Got.totalExecutedConversions();
    if (V == Variant::All && Oracle.Trap == TrapKind::None) {
      EXPECT_LE(Got.totalExecutedConversions(), BaselineSext);
    }
  }
}

// The remarks stream is a per-conversion decomposition of the aggregate
// pass counters, so the sums must agree exactly for every corpus module:
// eliminated remarks reproduce sext_eliminated + zext_eliminated +
// trunc_eliminated, eliminated+retained cover every analyzed conversion,
// and the theorem attribution fields reproduce theorem1..4_fired.
TEST_P(CorpusReplay, RemarkCountsMatchPassCounters) {
  std::unique_ptr<Module> M = loadCorpusFile(GetParam());
  ASSERT_NE(M, nullptr);

  PassManagerOptions Options;
  Options.CollectRemarks = true;
  InstrumentedPipelineResult Result = runInstrumentedPipeline(
      *M, PipelineConfig::forVariant(Variant::All), Options);
  ASSERT_TRUE(Result.Ok);

  uint64_t Eliminated = 0, Retained = 0, T1 = 0, T2 = 0, T3 = 0, T4 = 0;
  for (const Remark &R : Result.Remarks.remarks()) {
    if (R.Pass != "elimination")
      continue;
    if (R.Decision == RemarkDecision::Eliminated)
      Eliminated += R.Count;
    if (R.Decision == RemarkDecision::Retained)
      Retained += R.Count;
    T1 += R.Theorem1;
    T2 += R.Theorem2;
    T3 += R.Theorem3;
    T4 += R.Theorem4;
  }
  const PassStats &Stats = Result.Stats;
  EXPECT_EQ(Eliminated, Stats.value("elimination", "sext_eliminated") +
                            Stats.value("elimination", "zext_eliminated") +
                            Stats.value("elimination", "trunc_eliminated"));
  EXPECT_EQ(Eliminated + Retained, Stats.value("elimination", "analyzed"));
  EXPECT_EQ(T1, Stats.value("elimination", "theorem1_fired"));
  EXPECT_EQ(T2, Stats.value("elimination", "theorem2_fired"));
  EXPECT_EQ(T3, Stats.value("elimination", "theorem3_fired"));
  EXPECT_EQ(T4, Stats.value("elimination", "theorem4_fired"));
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplay,
                         ::testing::Values("generated_small",
                                           "generated_medium",
                                           "generated_large",
                                           // Reducer-minimized miscompile
                                           // repros; see each file's header
                                           // for the bug it pinned down.
                                           "reduced_call_boundary",
                                           "reduced_loop_carried",
                                           "reduced_mixed_store",
                                           "reduced_char_compare",
                                           "reduced_w32_inductive_sext",
                                           "reduced_copy_demand"));
