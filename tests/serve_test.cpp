//===- tests/serve_test.cpp - Compile-serving subsystem -------------------------===//
//
// Locks the serve/ subsystem's contracts:
//
//   - framing: header/payload round trips over a socketpair; bad magic,
//     unknown type, oversize length, and truncation fail cleanly;
//   - payload codecs: ServeRequest/ServeReply round-trip including error
//     kinds, tiers, stats, and remark streams;
//   - admission control: depth bound and queue-wait-p99-vs-budget gate,
//     typed OverloadError causes, sliding-window bookkeeping;
//   - the daemon: ping, compile replies byte-identical to the inline
//     reference service, typed parse/protocol errors, deadline expiry
//     under a saturated queue, load-shed rejection sharing the service's
//     Rejected ledger, graceful drain (every accepted request answered,
//     socket unlinked), and restart-with-warm-persistent-cache;
//   - request-scoped tracing: trace/request ids round-trip the wire (and
//     legacy id-less payloads decode to absent), the daemon echoes a
//     client-minted id and mints one for legacy clients, lifecycle events
//     land in the structured log under the request's ids, the Dump frame
//     returns a parseable sxe.flight.v1 recording, and the per-request
//     span set is identical at 1 and 4 workers (stitching determinism).
//
//===-----------------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "jit/CompileService.h"
#include "obs/TraceContext.h"
#include "serve/Admission.h"
#include "serve/Client.h"
#include "serve/Daemon.h"
#include "support/Json.h"
#include "tests/TestHelpers.h"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sxe;
namespace fs = std::filesystem;

namespace {

/// A fresh temp directory per test (socket + cache files), removed on
/// destruction.
struct TempDir {
  fs::path Path;
  explicit TempDir(const char *Tag) {
    static int Counter = 0;
    Path = fs::temp_directory_path() /
           ("sxe-serve-test-" + std::to_string(::getpid()) + "-" + Tag +
            "-" + std::to_string(Counter++));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
  std::string sock() const { return (Path / "serve.sock").string(); }
};

/// `.sxir` source with \p Funcs kernels of \p Chain dependent add+load
/// pairs each — big enough to keep a worker busy for a measurable while.
std::string makeHeavySource(unsigned Funcs, unsigned Chain,
                            int32_t Salt = 0) {
  Module M("heavy");
  for (unsigned F = 0; F < Funcs; ++F) {
    Function *Fn = M.createFunction("kernel" + std::to_string(F), Type::I32);
    Reg A = Fn->addParam(Type::ArrayRef, "a");
    Reg I = Fn->addParam(Type::I32, "i");
    IRBuilder B(Fn);
    B.startBlock("entry");
    Reg T = B.add32(I, B.constI32(Salt + 1), "t0");
    Reg V = T;
    for (unsigned C = 0; C < Chain; ++C) {
      V = B.arrayLoad(Type::I32, A, T, "v" + std::to_string(C));
      T = B.add32(V, B.constI32(static_cast<int32_t>(C) + Salt),
                  "t" + std::to_string(C + 1));
    }
    B.ret(V);
  }
  return printModule(M);
}

std::string smallSource(int32_t Bias = 1) {
  return makeHeavySource(/*Funcs=*/1, /*Chain=*/1, /*Salt=*/Bias);
}

/// Inline (jobs=0) reference compile of \p Source under the default
/// serve configuration (variant all, ia64).
std::string referenceIR(const std::string &Source) {
  CompileServiceOptions Options;
  Options.Jobs = 0;
  Options.CollectRemarks = true;
  CompileService Service(Options);
  CompileRequest Request;
  Request.Name = "ref";
  Request.Source = Source;
  Request.Config = PipelineConfig::forVariant(Variant::All);
  CompileResult Result = Service.enqueue(std::move(Request)).get();
  EXPECT_TRUE(Result.Ok) << Result.Error;
  return Result.Code ? Result.Code->IRText : std::string();
}

} // namespace

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, FrameRoundTripsOverSocketpair) {
  int Fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  std::string Error;
  std::string Payload = "{\"schema\":\"sxe.serve.v1\"}";
  ASSERT_TRUE(writeFrame(Fds[0], FrameType::Compile, Payload, Error))
      << Error;
  FrameType Type;
  std::string Loaded;
  ASSERT_TRUE(readFrame(Fds[1], Type, Loaded, Error)) << Error;
  EXPECT_EQ(FrameType::Compile, Type);
  EXPECT_EQ(Payload, Loaded);

  // Empty payloads (Ping) work too.
  ASSERT_TRUE(writeFrame(Fds[0], FrameType::Ping, "", Error)) << Error;
  ASSERT_TRUE(readFrame(Fds[1], Type, Loaded, Error)) << Error;
  EXPECT_EQ(FrameType::Ping, Type);
  EXPECT_TRUE(Loaded.empty());
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(ServeProtocol, RejectsBadMagicUnknownTypeAndOversize) {
  int Fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  std::string Error;
  FrameType Type;
  std::string Payload;

  // Bad magic.
  const char BadMagic[12] = {'N', 'O', 'P', 'E', 1, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(12, ::write(Fds[0], BadMagic, 12));
  EXPECT_FALSE(readFrame(Fds[1], Type, Payload, Error));
  EXPECT_NE(std::string::npos, Error.find("magic"));

  // Unknown frame type.
  const char BadType[12] = {'S', 'X', 'E', 'F', 99, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(12, ::write(Fds[0], BadType, 12));
  EXPECT_FALSE(readFrame(Fds[1], Type, Payload, Error));
  EXPECT_NE(std::string::npos, Error.find("unknown frame type"));

  // Length over the 64 MiB guard: must fail without allocating/reading.
  char Oversize[12] = {'S', 'X', 'E', 'F', 1, 0, 0, 0, 0, 0, 0, 0};
  Oversize[8] = Oversize[9] = Oversize[10] = Oversize[11] =
      static_cast<char>(0xFF);
  ASSERT_EQ(12, ::write(Fds[0], Oversize, 12));
  EXPECT_FALSE(readFrame(Fds[1], Type, Payload, Error));
  EXPECT_NE(std::string::npos, Error.find("64 MiB"));

  // Truncated frame: header promises bytes, peer closes early.
  const char Truncated[12] = {'S', 'X', 'E', 'F', 3, 0, 0, 0, 10, 0, 0, 0};
  ASSERT_EQ(12, ::write(Fds[0], Truncated, 12));
  ::close(Fds[0]);
  EXPECT_FALSE(readFrame(Fds[1], Type, Payload, Error));
  EXPECT_EQ("truncated frame", Error);
  ::close(Fds[1]);
}

TEST(ServeProtocol, CleanEofIsDistinguishable) {
  int Fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds));
  ::close(Fds[0]);
  FrameType Type;
  std::string Payload, Error;
  EXPECT_FALSE(readFrame(Fds[1], Type, Payload, Error));
  EXPECT_EQ("eof", Error);
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// Payload codecs
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, RequestRoundTrips) {
  ServeRequest Request;
  Request.Name = "mod.sxir";
  Request.Source = "func @f() -> i32 { ... }";
  Request.Target = "ppc64";
  Request.Variant = "array";
  Request.Hotness = 42.5;
  Request.DeadlineMillis = 250;
  Request.CollectRemarks = true;
  Request.WantIR = false;

  ServeRequest Loaded;
  std::string Error;
  ASSERT_TRUE(decodeServeRequest(encodeServeRequest(Request), Loaded, Error))
      << Error;
  EXPECT_EQ(Request.Name, Loaded.Name);
  EXPECT_EQ(Request.Source, Loaded.Source);
  EXPECT_EQ(Request.Target, Loaded.Target);
  EXPECT_EQ(Request.Variant, Loaded.Variant);
  EXPECT_EQ(Request.Hotness, Loaded.Hotness);
  EXPECT_EQ(Request.DeadlineMillis, Loaded.DeadlineMillis);
  EXPECT_EQ(Request.CollectRemarks, Loaded.CollectRemarks);
  EXPECT_EQ(Request.WantIR, Loaded.WantIR);

  // Defaults materialize for omitted fields.
  ASSERT_TRUE(decodeServeRequest(
      "{\"schema\":\"sxe.serve.v1\",\"source\":\"x\"}", Loaded, Error))
      << Error;
  EXPECT_EQ("ia64", Loaded.Target);
  EXPECT_EQ("all", Loaded.Variant);
  EXPECT_TRUE(Loaded.WantIR);
  EXPECT_EQ(0u, Loaded.DeadlineMillis);

  // Missing source is a hard error; so is a wrong schema.
  EXPECT_FALSE(
      decodeServeRequest("{\"schema\":\"sxe.serve.v1\"}", Loaded, Error));
  EXPECT_FALSE(decodeServeRequest("{\"schema\":\"other\",\"source\":\"x\"}",
                                  Loaded, Error));
}

TEST(ServeProtocol, ReplyRoundTripsOkAndError) {
  ServeReply Reply;
  Reply.Ok = true;
  Reply.Tier = ServeTier::Persistent;
  Reply.IRText = "func @f() -> i32 {}";
  Reply.InputIRHash = 0xdeadbeefcafe1234ull;
  StatEntry Entry;
  Entry.Pass = "elim-uddu";
  Entry.Name = "sext_eliminated";
  Entry.Value = 7;
  Reply.Stats.push_back(Entry);
  Entry.Name = "pde_variant";
  Entry.Value = 1;
  Entry.IsFlag = true;
  Reply.Stats.push_back(Entry);
  Reply.RemarksJsonl = "{\"schema\":\"sxe.remarks.v1\"}\n";
  Reply.QueueWaitNanos = 1234;
  Reply.WallNanos = 56789;

  ServeReply Loaded;
  std::string Error;
  ASSERT_TRUE(decodeServeReply(encodeServeReply(Reply), Loaded, Error))
      << Error;
  EXPECT_TRUE(Loaded.Ok);
  EXPECT_EQ(ServeTier::Persistent, Loaded.Tier);
  EXPECT_EQ(Reply.IRText, Loaded.IRText);
  EXPECT_EQ(Reply.InputIRHash, Loaded.InputIRHash);
  ASSERT_EQ(2u, Loaded.Stats.size());
  EXPECT_EQ("sext_eliminated", Loaded.Stats[0].Name);
  EXPECT_EQ(7u, Loaded.Stats[0].Value);
  EXPECT_FALSE(Loaded.Stats[0].IsFlag);
  EXPECT_TRUE(Loaded.Stats[1].IsFlag);
  EXPECT_EQ(Reply.RemarksJsonl, Loaded.RemarksJsonl);
  EXPECT_EQ(1234u, Loaded.QueueWaitNanos);
  EXPECT_EQ(56789u, Loaded.WallNanos);

  ServeReply ErrorReply;
  ErrorReply.Ok = false;
  ErrorReply.ErrorKind = ServeErrorKind::Overload;
  ErrorReply.Error = "queue full";
  ASSERT_TRUE(
      decodeServeReply(encodeServeReply(ErrorReply), Loaded, Error))
      << Error;
  EXPECT_FALSE(Loaded.Ok);
  EXPECT_EQ(ServeErrorKind::Overload, Loaded.ErrorKind);
  EXPECT_EQ("queue full", Loaded.Error);
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(Admission, BoundsInFlightDepth) {
  AdmissionOptions Options;
  Options.MaxQueueDepth = 2;
  AdmissionController Admission(Options);
  OverloadError Err;
  EXPECT_TRUE(Admission.tryAdmit(0, Err));
  EXPECT_TRUE(Admission.tryAdmit(0, Err));
  EXPECT_EQ(2u, Admission.depth());
  EXPECT_FALSE(Admission.tryAdmit(0, Err));
  EXPECT_EQ(OverloadError::Cause::QueueFull, Err.TheCause);
  EXPECT_EQ(2u, Err.QueueDepth);
  EXPECT_FALSE(Err.message().empty());

  Admission.onComplete(/*QueueWaitNanos=*/1000);
  EXPECT_EQ(1u, Admission.depth());
  EXPECT_TRUE(Admission.tryAdmit(0, Err));

  AdmissionStats Stats = Admission.stats();
  EXPECT_EQ(3u, Stats.Admitted);
  EXPECT_EQ(1u, Stats.RejectedQueueFull);
  EXPECT_EQ(0u, Stats.RejectedDeadline);
}

TEST(Admission, ShedsWhenQueueWaitP99ExceedsBudget) {
  AdmissionOptions Options;
  Options.MaxQueueDepth = 100;
  Options.WindowSize = 100;
  AdmissionController Admission(Options);
  OverloadError Err;

  // Feed 100 queue-wait samples of 10ms.
  for (int I = 0; I < 100; ++I) {
    ASSERT_TRUE(Admission.tryAdmit(0, Err));
    Admission.onComplete(10'000'000);
  }
  EXPECT_EQ(10'000'000u, Admission.queueWaitP99Nanos());

  // A 5ms budget is infeasible, a 20ms budget is fine, no budget skips
  // the gate.
  EXPECT_FALSE(Admission.tryAdmit(5'000'000, Err));
  EXPECT_EQ(OverloadError::Cause::DeadlineBudget, Err.TheCause);
  EXPECT_EQ(10'000'000u, Err.QueueWaitP99Nanos);
  EXPECT_EQ(5'000'000u, Err.DeadlineBudgetNanos);
  EXPECT_TRUE(Admission.tryAdmit(20'000'000, Err));
  EXPECT_TRUE(Admission.tryAdmit(0, Err));
  EXPECT_EQ(1u, Admission.stats().RejectedDeadline);
}

TEST(Admission, DefaultDeadlineAppliesToUnboundedRequests) {
  AdmissionOptions Options;
  Options.DefaultDeadlineNanos = 5'000'000;
  Options.WindowSize = 4;
  AdmissionController Admission(Options);
  OverloadError Err;
  for (int I = 0; I < 4; ++I) {
    ASSERT_TRUE(Admission.tryAdmit(20'000'000, Err));
    Admission.onComplete(10'000'000);
  }
  // No explicit budget -> the 5ms default gates against the 10ms p99.
  EXPECT_FALSE(Admission.tryAdmit(0, Err));
  EXPECT_EQ(OverloadError::Cause::DeadlineBudget, Err.TheCause);
}

//===----------------------------------------------------------------------===//
// Daemon end-to-end
//===----------------------------------------------------------------------===//

TEST(ServeDaemon, PingCompileAndTypedErrors) {
  TempDir Dir("basic");
  ServeDaemonOptions Options;
  Options.SocketPath = Dir.sock();
  Options.Jobs = 2;
  ServeDaemon Daemon(Options);
  std::string Error;
  ASSERT_TRUE(Daemon.start(Error)) << Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connectTo(Dir.sock(), Error, 2000)) << Error;
  EXPECT_TRUE(Client.ping(Error)) << Error;

  // A compile reply is byte-identical to the inline reference service.
  std::string Source = smallSource();
  ServeRequest Request;
  Request.Name = "small";
  Request.Source = Source;
  Request.CollectRemarks = true;
  ServeReply Reply;
  ASSERT_TRUE(Client.compile(Request, Reply, Error)) << Error;
  ASSERT_TRUE(Reply.Ok) << Reply.Error;
  EXPECT_EQ(ServeTier::Compiled, Reply.Tier);
  EXPECT_EQ(referenceIR(Source), Reply.IRText);
  EXPECT_NE(0u, Reply.InputIRHash);
  EXPECT_FALSE(Reply.Stats.empty());
  EXPECT_FALSE(Reply.RemarksJsonl.empty());

  // Same module again: served from the memory tier, same bytes.
  ServeReply Again;
  ASSERT_TRUE(Client.compile(Request, Again, Error)) << Error;
  ASSERT_TRUE(Again.Ok);
  EXPECT_EQ(ServeTier::Memory, Again.Tier);
  EXPECT_EQ(Reply.IRText, Again.IRText);
  EXPECT_EQ(Reply.RemarksJsonl, Again.RemarksJsonl);

  // Unparseable IR -> typed parse error.
  ServeRequest Broken = Request;
  Broken.Source = "this is not sxir";
  ASSERT_TRUE(Client.compile(Broken, Reply, Error)) << Error;
  EXPECT_FALSE(Reply.Ok);
  EXPECT_EQ(ServeErrorKind::Parse, Reply.ErrorKind);

  // Unknown target / variant -> typed protocol error.
  ServeRequest BadTarget = Request;
  BadTarget.Target = "vax";
  ASSERT_TRUE(Client.compile(BadTarget, Reply, Error)) << Error;
  EXPECT_FALSE(Reply.Ok);
  EXPECT_EQ(ServeErrorKind::Protocol, Reply.ErrorKind);

  // Metrics round trip carries the serve counters.
  std::string Prom;
  ASSERT_TRUE(Client.fetchMetrics(Prom, Error)) << Error;
  EXPECT_NE(std::string::npos, Prom.find("sxe_serve_requests_total"));
  EXPECT_NE(std::string::npos, Prom.find("sxe_rejects_total"));

  Daemon.stop();
  EXPECT_FALSE(fs::exists(Dir.sock()));
}

TEST(ServeDaemon, DeadlineExpiryUnderSaturatedQueue) {
  TempDir Dir("deadline");
  ServeDaemonOptions Options;
  Options.SocketPath = Dir.sock();
  Options.Jobs = 1; // One worker: the heavy jobs serialize.
  ServeDaemon Daemon(Options);
  std::string Error;
  ASSERT_TRUE(Daemon.start(Error)) << Error;

  // Saturate the single worker with heavy, hot compiles from one thread.
  std::thread Background([&] {
    ServeClient Heavy;
    std::string BgError;
    if (!Heavy.connectTo(Dir.sock(), BgError, 2000))
      return;
    for (int I = 0; I < 4; ++I) {
      ServeRequest Request;
      Request.Name = "heavy" + std::to_string(I);
      Request.Source = makeHeavySource(24, 8, /*Salt=*/I);
      Request.Hotness = 1000.0; // Serve before the doomed request.
      Request.WantIR = false;
      ServeReply Reply;
      Heavy.compile(Request, Reply, BgError);
    }
  });

  // A 1ms-deadline request behind the heavy queue: either shed at
  // admission (budget infeasible) or expired in queue — both are typed
  // deadline-side errors; at least one request must hit `deadline` given
  // cold compiles take far longer than 1ms.
  ServeClient Client;
  ASSERT_TRUE(Client.connectTo(Dir.sock(), Error, 2000)) << Error;
  unsigned DeadlineErrors = 0;
  for (int I = 0; I < 8; ++I) {
    ServeRequest Request;
    Request.Name = "doomed" + std::to_string(I);
    // Unique heavy source: never a cache hit, must actually compile.
    Request.Source = makeHeavySource(24, 8, /*Salt=*/100 + I);
    Request.Hotness = 0.0; // Behind every heavy job.
    Request.DeadlineMillis = 1;
    Request.WantIR = false;
    ServeReply Reply;
    ASSERT_TRUE(Client.compile(Request, Reply, Error)) << Error;
    if (!Reply.Ok) {
      EXPECT_TRUE(Reply.ErrorKind == ServeErrorKind::Deadline ||
                  Reply.ErrorKind == ServeErrorKind::Overload)
          << serveErrorKindName(Reply.ErrorKind) << ": " << Reply.Error;
      if (Reply.ErrorKind == ServeErrorKind::Deadline)
        ++DeadlineErrors;
    }
  }
  Background.join();
  EXPECT_GE(DeadlineErrors, 1u);
  EXPECT_GE(Daemon.service().stats().DeadlineMisses, 1u);
  Daemon.stop();
}

TEST(ServeDaemon, LoadShedsAtQueueDepthAndSharesRejectedLedger) {
  TempDir Dir("shed");
  ServeDaemonOptions Options;
  Options.SocketPath = Dir.sock();
  Options.Jobs = 1;
  Options.Admission.MaxQueueDepth = 1; // Shed on any concurrency.
  ServeDaemon Daemon(Options);
  std::string Error;
  ASSERT_TRUE(Daemon.start(Error)) << Error;

  // Four concurrent clients, each a burst of moderately heavy compiles:
  // with depth 1, concurrent submissions must shed.
  std::atomic<unsigned> Overloads{0}, Oks{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T) {
    Threads.emplace_back([&, T] {
      ServeClient Client;
      std::string ThreadError;
      if (!Client.connectTo(Dir.sock(), ThreadError, 2000))
        return;
      for (int I = 0; I < 8; ++I) {
        ServeRequest Request;
        Request.Name = "burst";
        Request.Source = makeHeavySource(8, 4, /*Salt=*/T * 100 + I);
        Request.WantIR = false;
        ServeReply Reply;
        if (!Client.compile(Request, Reply, ThreadError))
          return;
        if (Reply.Ok)
          ++Oks;
        else if (Reply.ErrorKind == ServeErrorKind::Overload)
          ++Overloads;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  EXPECT_GE(Overloads.load(), 1u);
  EXPECT_GE(Oks.load(), 1u);
  // Load-shed rejections land in the service's shared Rejected ledger
  // (satellite: one ledger for shutdown refusals and overload refusals).
  EXPECT_EQ(Overloads.load(), Daemon.service().stats().Rejected);
  EXPECT_EQ(Overloads.load(),
            Daemon.admission().stats().RejectedQueueFull);
  Daemon.stop();
}

TEST(ServeDaemon, GracefulDrainAnswersEveryAcceptedRequest) {
  TempDir Dir("drain");
  ServeDaemonOptions Options;
  Options.SocketPath = Dir.sock();
  Options.Jobs = 1;
  ServeDaemon Daemon(Options);
  std::string Error;
  ASSERT_TRUE(Daemon.start(Error)) << Error;

  // A heavy compile in flight while the daemon drains.
  std::atomic<bool> GotReply{false};
  std::atomic<bool> ReplyWasTyped{false};
  std::thread InFlight([&] {
    ServeClient Client;
    std::string ThreadError;
    if (!Client.connectTo(Dir.sock(), ThreadError, 2000))
      return;
    ServeRequest Request;
    Request.Name = "inflight";
    Request.Source = makeHeavySource(24, 8);
    Request.WantIR = false;
    ServeReply Reply;
    if (Client.compile(Request, Reply, ThreadError)) {
      GotReply = true;
      // Either it was admitted before the stop flag (Ok) or refused with
      // the typed shutdown error — never a dropped connection.
      ReplyWasTyped =
          Reply.Ok || Reply.ErrorKind == ServeErrorKind::Shutdown;
    }
  });
  // Give the in-flight request a moment to be admitted, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Daemon.requestStop();
  Daemon.stop();
  InFlight.join();

  EXPECT_TRUE(GotReply.load());
  EXPECT_TRUE(ReplyWasTyped.load());
  EXPECT_FALSE(fs::exists(Dir.sock()));

  // A draining daemon rejects fresh connections (socket unlinked).
  ServeClient Late;
  EXPECT_FALSE(Late.connectTo(Dir.sock(), Error));
}

TEST(ServeDaemon, ShutdownFrameDrainsViaRun) {
  TempDir Dir("shutdownframe");
  ServeDaemonOptions Options;
  Options.SocketPath = Dir.sock();
  Options.Jobs = 1;
  ServeDaemon Daemon(Options);
  std::string Error;
  ASSERT_TRUE(Daemon.start(Error)) << Error;
  std::thread Runner([&] { Daemon.run(); });

  ServeClient Client;
  ASSERT_TRUE(Client.connectTo(Dir.sock(), Error, 2000)) << Error;
  ASSERT_TRUE(Client.requestShutdown(Error)) << Error;
  Runner.join(); // run() returns only after the drain completes.
  EXPECT_TRUE(Daemon.stopRequested());
  EXPECT_FALSE(fs::exists(Dir.sock()));
}

TEST(ServeDaemon, RestartServesFromWarmPersistentCache) {
  TempDir Dir("restart");
  std::string CacheDir = (Dir.Path / "cache").string();
  std::string Source = smallSource(/*Bias=*/7);
  std::string FirstIR;

  {
    ServeDaemonOptions Options;
    Options.SocketPath = Dir.sock();
    Options.Jobs = 2;
    Options.CacheDir = CacheDir;
    ServeDaemon Daemon(Options);
    std::string Error;
    ASSERT_TRUE(Daemon.start(Error)) << Error;
    ServeClient Client;
    ASSERT_TRUE(Client.connectTo(Dir.sock(), Error, 2000)) << Error;
    ServeRequest Request;
    Request.Name = "warm";
    Request.Source = Source;
    Request.CollectRemarks = true;
    ServeReply Reply;
    ASSERT_TRUE(Client.compile(Request, Reply, Error)) << Error;
    ASSERT_TRUE(Reply.Ok) << Reply.Error;
    EXPECT_EQ(ServeTier::Compiled, Reply.Tier);
    FirstIR = Reply.IRText;
    Daemon.stop(); // Flushes the persistent index.
  }

  // Second daemon, same cache dir: the artifact comes off disk without a
  // compile, byte-identical, with the remark stream replayed.
  ServeDaemonOptions Options;
  Options.SocketPath = Dir.sock();
  Options.Jobs = 2;
  Options.CacheDir = CacheDir;
  ServeDaemon Daemon(Options);
  std::string Error;
  ASSERT_TRUE(Daemon.start(Error)) << Error;
  ServeClient Client;
  ASSERT_TRUE(Client.connectTo(Dir.sock(), Error, 2000)) << Error;
  ServeRequest Request;
  Request.Name = "warm";
  Request.Source = Source;
  Request.CollectRemarks = true;
  ServeReply Reply;
  ASSERT_TRUE(Client.compile(Request, Reply, Error)) << Error;
  ASSERT_TRUE(Reply.Ok) << Reply.Error;
  EXPECT_EQ(ServeTier::Persistent, Reply.Tier);
  EXPECT_EQ(FirstIR, Reply.IRText);
  EXPECT_FALSE(Reply.RemarksJsonl.empty());
  EXPECT_EQ(0u, Daemon.service().stats().Compiled);
  EXPECT_EQ(1u, Daemon.service().stats().PersistentHits);
  Daemon.stop();
}

//===----------------------------------------------------------------------===//
// Request-scoped tracing and the flight recorder
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, TraceIdsRoundTripAndLegacyPayloadsDecodeToZero) {
  ServeRequest Request;
  Request.Name = "mod.sxir";
  Request.Source = "x";
  Request.TraceId = 0x00c0ffee00000001ull;
  Request.ClientRequestId = 9;
  ServeRequest LoadedRequest;
  std::string Error;
  ASSERT_TRUE(decodeServeRequest(encodeServeRequest(Request), LoadedRequest,
                                 Error))
      << Error;
  EXPECT_EQ(Request.TraceId, LoadedRequest.TraceId);
  EXPECT_EQ(9u, LoadedRequest.ClientRequestId);

  ServeReply Reply;
  Reply.Ok = true;
  Reply.TraceId = 0xabcdef0102030405ull;
  Reply.RequestId = 17;
  ServeReply LoadedReply;
  ASSERT_TRUE(decodeServeReply(encodeServeReply(Reply), LoadedReply, Error))
      << Error;
  EXPECT_EQ(Reply.TraceId, LoadedReply.TraceId);
  EXPECT_EQ(17u, LoadedReply.RequestId);

  // Old-client compat: payloads that predate tracing carry no id fields
  // and must decode to zero (= absent), not fail.
  ASSERT_TRUE(decodeServeRequest(
      "{\"schema\":\"sxe.serve.v1\",\"source\":\"x\"}", LoadedRequest,
      Error))
      << Error;
  EXPECT_EQ(0u, LoadedRequest.TraceId);
  EXPECT_EQ(0u, LoadedRequest.ClientRequestId);

  // A malformed trace id degrades to absent rather than poisoning the
  // request.
  ASSERT_TRUE(decodeServeRequest("{\"schema\":\"sxe.serve.v1\",\"source\":"
                                 "\"x\",\"trace_id\":\"not-hex\"}",
                                 LoadedRequest, Error))
      << Error;
  EXPECT_EQ(0u, LoadedRequest.TraceId);

  // Zero ids are omitted on the wire and come back as zero.
  ServeReply PlainReply;
  PlainReply.Ok = true;
  std::string Encoded = encodeServeReply(PlainReply);
  EXPECT_EQ(std::string::npos, Encoded.find("trace_id"));
  ASSERT_TRUE(decodeServeReply(Encoded, LoadedReply, Error)) << Error;
  EXPECT_EQ(0u, LoadedReply.TraceId);
  EXPECT_EQ(0u, LoadedReply.RequestId);
}

TEST(ServeDaemon, EchoesTraceIdentityAndLogsLifecycleEvents) {
  TempDir Dir("trace");
  ServeDaemonOptions Options;
  Options.SocketPath = Dir.sock();
  Options.Jobs = 2;
  ServeDaemon Daemon(Options);
  std::string Error;
  ASSERT_TRUE(Daemon.start(Error)) << Error;

  ServeClient Client;
  TraceCollector ClientTrace;
  Client.setTrace(&ClientTrace);
  ASSERT_TRUE(Client.connectTo(Dir.sock(), Error, 2000)) << Error;

  // A client-minted trace id comes back verbatim; the daemon assigns the
  // dense request id.
  ServeRequest Request;
  Request.Name = "traced.sxir";
  Request.Source = smallSource(/*Bias=*/21);
  Request.TraceId = 0x5eed5eed5eed5eedull;
  ServeReply Reply;
  ASSERT_TRUE(Client.compile(Request, Reply, Error)) << Error;
  ASSERT_TRUE(Reply.Ok) << Reply.Error;
  EXPECT_EQ(Request.TraceId, Reply.TraceId);
  EXPECT_EQ(1u, Reply.RequestId);

  // The client library mints when the caller did not.
  ServeRequest Minted;
  Minted.Name = "minted.sxir";
  Minted.Source = smallSource(/*Bias=*/22);
  ServeReply Second;
  ASSERT_TRUE(Client.compile(Minted, Second, Error)) << Error;
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_NE(0u, Second.TraceId);
  EXPECT_EQ(2u, Second.RequestId);

  // The structured event log recorded the lifecycle under the same ids.
  unsigned Admits = 0, Tiers = 0, Replies = 0;
  for (const ObsEvent &Event : Daemon.eventLog().snapshot()) {
    if (Event.Ctx.TraceId != Request.TraceId)
      continue;
    if (Event.Kind == ObsEventKind::Admit)
      ++Admits;
    if (Event.Kind == ObsEventKind::CacheTier)
      ++Tiers;
    if (Event.Kind == ObsEventKind::Reply)
      ++Replies;
  }
  EXPECT_EQ(1u, Admits);
  EXPECT_EQ(1u, Tiers);
  EXPECT_EQ(1u, Replies);

  // Both trace timelines carry the id as a span argument — the join key
  // tools/sxe-obs stitches by.
  std::string Hex = traceIdHex(Request.TraceId);
  EXPECT_NE(std::string::npos, Daemon.traceCollector().toJson().find(Hex));
  EXPECT_NE(std::string::npos, ClientTrace.toJson().find(Hex));
  Daemon.stop();
}

TEST(ServeDaemon, MintsTraceIdsForLegacyClients) {
  TempDir Dir("legacy");
  ServeDaemonOptions Options;
  Options.SocketPath = Dir.sock();
  Options.Jobs = 1;
  ServeDaemon Daemon(Options);
  std::string Error;
  ASSERT_TRUE(Daemon.start(Error)) << Error;

  // Speak the wire protocol directly, as a pre-tracing client would: no
  // trace_id field in the request at all.
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::string Sock = Dir.sock();
  ASSERT_LT(Sock.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Sock.c_str(), Sock.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(0, ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                         sizeof(Addr)));

  ServeRequest Request;
  Request.Name = "legacy.sxir";
  Request.Source = smallSource(/*Bias=*/31);
  ASSERT_EQ(0u, Request.TraceId);
  ASSERT_TRUE(writeFrame(Fd, FrameType::Compile,
                         encodeServeRequest(Request), Error))
      << Error;
  FrameType Type;
  std::string Payload;
  ASSERT_TRUE(readFrame(Fd, Type, Payload, Error)) << Error;
  ASSERT_EQ(FrameType::CompileReply, Type);
  ServeReply Reply;
  ASSERT_TRUE(decodeServeReply(Payload, Reply, Error)) << Error;
  ASSERT_TRUE(Reply.Ok) << Reply.Error;
  // The daemon minted an id so even this request is joinable.
  EXPECT_NE(0u, Reply.TraceId);
  EXPECT_EQ(1u, Reply.RequestId);
  ::close(Fd);
  Daemon.stop();
}

TEST(ServeDaemon, DumpFrameReturnsParseableFlightRecording) {
  TempDir Dir("dump");
  ServeDaemonOptions Options;
  Options.SocketPath = Dir.sock();
  Options.Jobs = 1;
  ServeDaemon Daemon(Options);
  std::string Error;
  ASSERT_TRUE(Daemon.start(Error)) << Error;

  ServeClient Client;
  ASSERT_TRUE(Client.connectTo(Dir.sock(), Error, 2000)) << Error;
  ServeRequest Request;
  Request.Name = "dumped.sxir";
  Request.Source = smallSource(/*Bias=*/41);
  ServeReply Reply;
  ASSERT_TRUE(Client.compile(Request, Reply, Error)) << Error;
  ASSERT_TRUE(Reply.Ok) << Reply.Error;

  std::string Dump;
  ASSERT_TRUE(Client.fetchFlightDump(Dump, Error)) << Error;
  std::vector<std::string> Lines;
  std::istringstream In(Dump);
  for (std::string Line; std::getline(In, Line);) {
    if (!Line.empty())
      Lines.push_back(Line);
  }
  ASSERT_GE(Lines.size(), 2u);
  JsonValue Doc;
  for (const std::string &Line : Lines) {
    ASSERT_TRUE(parseJson(Line, Doc, Error)) << Line << ": " << Error;
  }
  ASSERT_TRUE(parseJson(Lines[0], Doc, Error)) << Error;
  EXPECT_EQ(kFlightSchema, Doc.stringField("schema"));
  EXPECT_NE(std::string::npos, Dump.find("\"admit\""));
  EXPECT_NE(std::string::npos, Dump.find(traceIdHex(Reply.TraceId)));
  Daemon.stop();
}

namespace {

/// Span names in \p TraceJson whose args carry \p TraceIdHex — the same
/// join tools/sxe-obs performs.
std::set<std::string> spanNamesForTrace(const std::string &TraceJson,
                                        const std::string &TraceIdHex) {
  JsonValue Doc;
  std::string Error;
  EXPECT_TRUE(parseJson(TraceJson, Doc, Error)) << Error;
  std::set<std::string> Names;
  const JsonValue *Events = Doc.find("traceEvents");
  if (!Events)
    return Names;
  for (const JsonValue &Event : Events->array()) {
    if (Event.stringField("ph") != "X")
      continue;
    const JsonValue *Args = Event.find("args");
    if (Args && Args->stringField("trace_id") == TraceIdHex)
      Names.insert(Event.stringField("name"));
  }
  return Names;
}

} // namespace

TEST(ServeDaemon, SpanSetPerRequestIsDeterministicAcrossWorkerCounts) {
  // The same three cold modules served by a 1-worker and a 4-worker
  // daemon must produce the same stitched span-name set per request —
  // scheduling may reorder spans across tracks, never add or drop them.
  const int Biases[] = {51, 52, 53};
  std::map<unsigned, std::map<int, std::set<std::string>>> SpansByJobs;
  for (unsigned Jobs : {1u, 4u}) {
    TempDir Dir(Jobs == 1 ? "stitch1" : "stitch4");
    ServeDaemonOptions Options;
    Options.SocketPath = Dir.sock();
    Options.Jobs = Jobs;
    ServeDaemon Daemon(Options);
    std::string Error;
    ASSERT_TRUE(Daemon.start(Error)) << Error;
    ServeClient Client;
    ASSERT_TRUE(Client.connectTo(Dir.sock(), Error, 2000)) << Error;
    for (int Bias : Biases) {
      ServeRequest Request;
      Request.Name = "stitch" + std::to_string(Bias);
      Request.Source = smallSource(Bias);
      ServeReply Reply;
      ASSERT_TRUE(Client.compile(Request, Reply, Error)) << Error;
      ASSERT_TRUE(Reply.Ok) << Reply.Error;
      SpansByJobs[Jobs][Bias] = spanNamesForTrace(
          Daemon.traceCollector().toJson(), traceIdHex(Reply.TraceId));
    }
    Daemon.stop();
  }
  for (int Bias : Biases) {
    const std::set<std::string> &Serial = SpansByJobs[1][Bias];
    EXPECT_EQ(Serial, SpansByJobs[4][Bias]) << "bias " << Bias;
    // Every cold request tells the whole story: enqueue, probe, compile,
    // serve.
    for (const char *Name :
         {"queue-wait", "cache-probe", "compile", "serve-request"})
      EXPECT_TRUE(Serial.count(Name)) << Name << " missing, bias " << Bias;
  }
}
