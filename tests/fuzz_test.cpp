//===- tests/fuzz_test.cpp - Differential-testing subsystem tests -------------===//
//
// Covers the src/fuzz/ library itself: generator determinism and knob
// behaviour, the differential harness (including that an injected
// miscompile is caught), the greedy reducer, and a parser-fuzz smoke run.
// The heavy campaigns live in tools/sxe-difftest and tools/sxe-irfuzz;
// these tests keep the machinery honest at tier-1 speed.
//
//===--------------------------------------------------------------------------===//

#include "fuzz/DiffTest.h"
#include "fuzz/ParserFuzzer.h"
#include "fuzz/RandomModuleGenerator.h"
#include "fuzz/Reducer.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

TEST(RandomModuleGeneratorTest, SameSeedSameModule) {
  for (uint64_t Seed : {1u, 7u, 42u}) {
    RandomModuleGenerator GenA(Seed, GeneratorOptions::medium());
    RandomModuleGenerator GenB(Seed, GeneratorOptions::medium());
    EXPECT_EQ(printModule(*GenA.generate()), printModule(*GenB.generate()))
        << "seed " << Seed;
  }
}

TEST(RandomModuleGeneratorTest, DifferentSeedsDiffer) {
  RandomModuleGenerator GenA(1, GeneratorOptions::medium());
  RandomModuleGenerator GenB(2, GeneratorOptions::medium());
  EXPECT_NE(printModule(*GenA.generate()), printModule(*GenB.generate()));
}

TEST(RandomModuleGeneratorTest, ModulesVerify) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    RandomModuleGenerator Gen(Seed, GeneratorOptions::medium());
    auto M = Gen.generate();
    std::vector<std::string> Problems;
    EXPECT_TRUE(verifyModule(*M, Problems))
        << "seed " << Seed << ": " << Problems.front();
  }
}

TEST(RandomModuleGeneratorTest, OracleTerminatesWithinBudget) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    RandomModuleGenerator Gen(Seed, GeneratorOptions::medium());
    auto M = Gen.generate();
    InterpOptions Java;
    Java.Semantics = ExecSemantics::Java;
    Java.MaxSteps = 1u << 22;
    ExecResult Result = Interpreter(*M, Java).run("main");
    EXPECT_NE(Result.Trap, TrapKind::StepLimit) << "seed " << Seed;
  }
}

TEST(RandomModuleGeneratorTest, DisablingCallsRemovesCalls) {
  GeneratorOptions Options = GeneratorOptions::medium();
  Options.EnableCalls = false;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    RandomModuleGenerator Gen(Seed, Options);
    auto M = Gen.generate();
    EXPECT_EQ(M->functions().size(), 1u) << "seed " << Seed;
    for (const auto &F : M->functions())
      for (const auto &BB : F->blocks())
        for (const Instruction &I : *BB)
          EXPECT_NE(I.opcode(), Opcode::Call) << "seed " << Seed;
  }
}

TEST(RandomModuleGeneratorTest, DisablingFloatRemovesFloatOps) {
  GeneratorOptions Options = GeneratorOptions::medium();
  Options.EnableFloat = false;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    RandomModuleGenerator Gen(Seed, Options);
    auto M = Gen.generate();
    for (const auto &F : M->functions())
      for (const auto &BB : F->blocks())
        for (const Instruction &I : *BB) {
          EXPECT_NE(I.opcode(), Opcode::I2D) << "seed " << Seed;
          EXPECT_NE(I.opcode(), Opcode::D2I) << "seed " << Seed;
        }
  }
}

TEST(DiffTestHarness, PassesOnSeedRange) {
  for (uint64_t Seed = 100; Seed < 110; ++Seed) {
    RandomModuleGenerator Gen(Seed, GeneratorOptions::small());
    auto M = Gen.generate();
    DiffResult Result = runDifferentialTest(*M);
    EXPECT_TRUE(Result.ok())
        << "seed " << Seed << ": " << Result.Failure->describe();
  }
}

/// Deletes the first sign extension in main — the canonical miscompile.
void deleteFirstSext(Module &M, Variant V, const TargetInfo &Target) {
  if (V != Variant::All || Target.name() != "ia64")
    return;
  Function *Main = M.findFunction("main");
  if (!Main)
    return;
  for (const auto &BB : Main->blocks())
    for (Instruction &I : *BB)
      if (isSextOpcode(I.opcode())) {
        BB->erase(&I);
        return;
      }
}

TEST(DiffTestHarness, CatchesInjectedMiscompile) {
  DiffConfig Config;
  Config.PostPipelineMutator = deleteFirstSext;

  // Not every module is sensitive to its first extension being dropped,
  // but a bounded seed scan must surface at least one detection.
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 10 && !Caught; ++Seed) {
    RandomModuleGenerator Gen(Seed, GeneratorOptions::medium());
    auto M = Gen.generate();
    DiffResult Result = runDifferentialTest(*M, Config);
    if (!Result.ok() &&
        Result.Failure->Status != DiffStatus::OracleStepLimit)
      Caught = true;
  }
  EXPECT_TRUE(Caught) << "injected miscompile never detected in 10 seeds";
}

TEST(ReducerTest, ShrinksWhileFailurePersists) {
  // Find a seed the injected bug breaks, then reduce it.
  DiffConfig Config;
  Config.PostPipelineMutator = deleteFirstSext;

  std::unique_ptr<Module> Failing;
  DiffStatus FailureKind = DiffStatus::Ok;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    RandomModuleGenerator Gen(Seed, GeneratorOptions::medium());
    auto M = Gen.generate();
    DiffResult Result = runDifferentialTest(*M, Config);
    if (!Result.ok() &&
        Result.Failure->Status != DiffStatus::OracleStepLimit) {
      Failing = std::move(M);
      FailureKind = Result.Failure->Status;
      break;
    }
  }
  ASSERT_TRUE(Failing) << "no failing seed found to reduce";

  auto StillFails = [&](const Module &M) {
    DiffResult Result = runDifferentialTest(M, Config);
    return !Result.ok() && Result.Failure->Status == FailureKind;
  };

  ReductionStats Stats;
  auto Reduced = reduceModule(*Failing, StillFails, ReducerOptions(), &Stats);
  ASSERT_TRUE(Reduced);
  EXPECT_LT(Stats.ReducedInstructions, Stats.OriginalInstructions);
  EXPECT_TRUE(StillFails(*Reduced));

  // The minimized module still verifies and round-trips through the
  // textual format, ready to land in tests/corpus/.
  std::vector<std::string> Problems;
  EXPECT_TRUE(verifyModule(*Reduced, Problems)) << Problems.front();
  std::string Printed = printModule(*Reduced);
  ParseResult Parsed = parseModule(Printed);
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  EXPECT_EQ(printModule(*Parsed.M), Printed);
}

TEST(ParserFuzzSmoke, SurvivesAdversarialInput) {
  ParserFuzzStats Stats;
  runParserFuzz(/*Seed=*/1, /*Inputs=*/20000, ParserFuzzOptions(), &Stats);
  EXPECT_EQ(Stats.Inputs, 20000u);
  // Mutated-valid-module inputs guarantee some parses succeed, so the
  // accept path (verify + reprint) is genuinely exercised.
  EXPECT_GT(Stats.Accepted, 0u);
  EXPECT_GT(Stats.Rejected, 0u);
  EXPECT_EQ(Stats.Accepted + Stats.Rejected, Stats.Inputs);
}

} // namespace
