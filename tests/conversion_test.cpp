//===- tests/conversion_test.cpp - Zero-extension/truncation coverage -----------===//
//
// The conversion-family generalization: structural zext/trunc facts and the
// strict Zero@h => Sign@w implication, the x86-64 implicit-zero-extension
// kind flips, elimination of redundant zero extensions and truncations with
// per-kind counter attribution, verifier rejection of conversions whose
// result cannot be canonical for the destination register type, unsigned
// edge-case parity against the Java oracle across all four targets, and the
// generalized conversion-census no-regression.
//
//===----------------------------------------------------------------------------===//

#include "fuzz/DiffTest.h"
#include "interp/Interpreter.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "sxe/Elimination.h"
#include "sxe/ExtensionFacts.h"
#include "sxe/Insertion.h"
#include "sxe/OrderDetermination.h"
#include "sxe/Pipeline.h"
#include "target/StaticCounts.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

using namespace sxe;
using namespace sxe::test;

namespace {

/// Last instruction appended to F's entry block.
const Instruction &lastIn(const Function &F) {
  const Instruction *Last = nullptr;
  for (const Instruction &I : *F.entryBlock())
    Last = &I;
  EXPECT_NE(Last, nullptr);
  return *Last;
}

unsigned countOpcode(const Function &F, Opcode Op) {
  unsigned Count = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : *BB)
      Count += I.opcode() == Op ? 1 : 0;
  return Count;
}

/// Runs the basic ud/du elimination (no insertion/order/array) over F.
EliminationStats eliminateBasic(Function &F,
                                const TargetInfo &T = TargetInfo::ia64()) {
  insertDummyExtends(F);
  std::vector<Instruction *> Order = extensionsInReverseDFS(F);
  EliminationOptions Options;
  Options.Target = &T;
  return runElimination(F, Order, Options);
}

//===----------------------------------------------------------------------===//
// Structural facts: zext/trunc kinds and the strict Zero => Sign implication.
//===----------------------------------------------------------------------===//

TEST(ConversionFactsTest, ZextIsZeroExtendedAndStrictlySignExtended) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  B.zext16(P, "c");
  const Instruction &Z16 = lastIn(*F);
  const TargetInfo &T = TargetInfo::ia64();

  // zext16: Zero at 16 and every wider width.
  EXPECT_TRUE(defKnownExtendedStructural(*F, Z16, T, ExtKind::Zero, 16));
  EXPECT_TRUE(defKnownExtendedStructural(*F, Z16, T, ExtKind::Zero, 32));
  EXPECT_FALSE(defKnownExtendedStructural(*F, Z16, T, ExtKind::Zero, 8));
  // Zero@16 implies Sign only STRICTLY above 16: 0xFFFF is Zero@16 but has
  // its bit 15 set, so it is not Sign@16.
  EXPECT_FALSE(defKnownExtendedStructural(*F, Z16, T, ExtKind::Sign, 16));
  EXPECT_TRUE(defKnownExtendedStructural(*F, Z16, T, ExtKind::Sign, 17));
  EXPECT_TRUE(defKnownExtendedStructural(*F, Z16, T, ExtKind::Sign, 32));

  B.zext8(P, "b");
  const Instruction &Z8 = lastIn(*F);
  EXPECT_TRUE(defKnownExtendedStructural(*F, Z8, T, ExtKind::Zero, 8));
  EXPECT_FALSE(defKnownExtendedStructural(*F, Z8, T, ExtKind::Sign, 8));
  EXPECT_TRUE(defKnownExtendedStructural(*F, Z8, T, ExtKind::Sign, 9));
}

TEST(ConversionFactsTest, TruncIsZeroExtendedAtThirtyTwoOnly) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg L = F->addParam(Type::I64, "l");
  IRBuilder B(F);
  B.startBlock("entry");
  B.trunc32(L, "t");
  const Instruction &Tr = lastIn(*F);
  const TargetInfo &T = TargetInfo::ia64();

  EXPECT_TRUE(defKnownExtendedStructural(*F, Tr, T, ExtKind::Zero, 32));
  EXPECT_FALSE(defKnownExtendedStructural(*F, Tr, T, ExtKind::Zero, 16));
  // trunc32(x) can be 0xFFFFFFFF: Zero@32 but not Sign@32.
  EXPECT_FALSE(defKnownExtendedStructural(*F, Tr, T, ExtKind::Sign, 32));
  EXPECT_TRUE(defKnownExtendedStructural(*F, Tr, T, ExtKind::Sign, 33));
}

TEST(ConversionFactsTest, ConstantsSplitByKind) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  B.constI32(255, "k");
  const Instruction &K255 = lastIn(*F);
  const TargetInfo &T = TargetInfo::ia64();
  EXPECT_TRUE(defKnownExtendedStructural(*F, K255, T, ExtKind::Zero, 8));
  EXPECT_FALSE(defKnownExtendedStructural(*F, K255, T, ExtKind::Sign, 8));
  EXPECT_TRUE(defKnownExtendedStructural(*F, K255, T, ExtKind::Sign, 9));

  B.constI32(-1, "m");
  const Instruction &Km1 = lastIn(*F);
  EXPECT_TRUE(defKnownExtendedStructural(*F, Km1, T, ExtKind::Sign, 1));
  EXPECT_FALSE(defKnownExtendedStructural(*F, Km1, T, ExtKind::Zero, 32));
}

TEST(ConversionFactsTest, CanonicalExtOfRegisterTypes) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg I = F->addParam(Type::I32, "i");
  Reg C = F->addParam(Type::U16, "c");
  Reg By = F->addParam(Type::I8, "b");
  Reg L = F->addParam(Type::I64, "l");

  EXPECT_EQ(canonicalRegExt(*F, I).Kind, ExtKind::Sign);
  EXPECT_EQ(canonicalRegBits(*F, I), 32u);
  EXPECT_EQ(canonicalRegExt(*F, C).Kind, ExtKind::Zero);
  EXPECT_EQ(canonicalRegBits(*F, C), 16u);
  EXPECT_EQ(canonicalConversionOpcode(*F, C), Opcode::Zext16);
  EXPECT_EQ(canonicalConversionOpcode(*F, By), Opcode::Sext8);
  EXPECT_EQ(canonicalConversionOpcode(*F, I), Opcode::Sext32);
  EXPECT_EQ(canonicalRegBits(*F, L), 0u);
}

//===----------------------------------------------------------------------===//
// x86-64: implicit zero extension of every 32-bit result.
//===----------------------------------------------------------------------===//

TEST(ConversionFactsTest, X8664FlipsKindOfCanonicalIntProducers) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  const TargetInfo &IA64 = TargetInfo::ia64();
  const TargetInfo &X86 = TargetInfo::x86_64();

  // div32 produces a canonical Java int: sign-extended where the machine
  // writes full registers, zero-extended where 32-bit writes clear the
  // upper half.
  B.div32(P, P, "q");
  const Instruction &Div = lastIn(*F);
  EXPECT_TRUE(defKnownExtendedStructural(*F, Div, IA64, ExtKind::Sign, 32));
  EXPECT_FALSE(defKnownExtendedStructural(*F, Div, IA64, ExtKind::Zero, 32));
  EXPECT_TRUE(defKnownExtendedStructural(*F, Div, X86, ExtKind::Zero, 32));
  EXPECT_FALSE(defKnownExtendedStructural(*F, Div, X86, ExtKind::Sign, 32));

  B.sar32(P, P, "s");
  const Instruction &Sar = lastIn(*F);
  EXPECT_TRUE(defKnownExtendedStructural(*F, Sar, IA64, ExtKind::Sign, 32));
  EXPECT_TRUE(defKnownExtendedStructural(*F, Sar, X86, ExtKind::Zero, 32));
  EXPECT_FALSE(defKnownExtendedStructural(*F, Sar, X86, ExtKind::Sign, 32));

  Reg D = B.i2d(P, "d");
  B.d2i(D, "n");
  const Instruction &D2I = lastIn(*F);
  EXPECT_TRUE(defKnownExtendedStructural(*F, D2I, IA64, ExtKind::Sign, 32));
  EXPECT_TRUE(defKnownExtendedStructural(*F, D2I, X86, ExtKind::Zero, 32));
  EXPECT_FALSE(defKnownExtendedStructural(*F, D2I, X86, ExtKind::Sign, 32));

  // shr32 is an unsigned extract on every target.
  B.shr32(P, P, "u");
  const Instruction &Shr = lastIn(*F);
  EXPECT_TRUE(defKnownExtendedStructural(*F, Shr, IA64, ExtKind::Zero, 32));
  EXPECT_TRUE(defKnownExtendedStructural(*F, Shr, X86, ExtKind::Zero, 32));

  // A plain W32 add is nothing on IA64, but Zero@32 (and only Zero) on an
  // implicit-zero-extension target.
  B.add32(P, P, "a");
  const Instruction &Add = lastIn(*F);
  EXPECT_FALSE(defKnownExtendedStructural(*F, Add, IA64, ExtKind::Sign, 32));
  EXPECT_FALSE(defKnownExtendedStructural(*F, Add, IA64, ExtKind::Zero, 32));
  EXPECT_TRUE(defKnownExtendedStructural(*F, Add, X86, ExtKind::Zero, 32));
  EXPECT_FALSE(defKnownExtendedStructural(*F, Add, X86, ExtKind::Sign, 32));
}

TEST(ConversionFactsTest, X8664MakesW32UsesCaseOne) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  B.add32(P, P, "a");
  const Instruction &Add = lastIn(*F);

  // On IA64 the operand's upper bits flow physically into the destination
  // register: pass-through (Case 2), not irrelevant (Case 1).
  EXPECT_FALSE(
      upperBitsIrrelevant(*F, Add, 0, 32, &TargetInfo::ia64()));
  EXPECT_TRUE(passThroughOperand(*F, Add, 0, 32));
  // On x86-64 the 32-bit write clears bits 63:32: the influence chain ends.
  EXPECT_TRUE(
      upperBitsIrrelevant(*F, Add, 0, 32, &TargetInfo::x86_64()));

  // 8/16-bit conversions fix data bits of a W32 add on every target.
  EXPECT_FALSE(
      upperBitsIrrelevant(*F, Add, 0, 16, &TargetInfo::x86_64()));
  EXPECT_FALSE(passThroughOperand(*F, Add, 0, 16));
}

TEST(ConversionFactsTest, NarrowStoresIrrelevantAtElementWidth) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg A = F->addParam(Type::ArrayRef, "a");
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  B.arrayStore(Type::U16, A, Zero, P);
  const Instruction &St = lastIn(*F);

  // The stored value only contributes its low 16 bits...
  EXPECT_TRUE(upperBitsIrrelevant(*F, St, 2, 16, &TargetInfo::ia64()));
  EXPECT_FALSE(upperBitsIrrelevant(*F, St, 2, 8, &TargetInfo::ia64()));
  // ...but the index feeds the effective address and is never irrelevant.
  EXPECT_FALSE(upperBitsIrrelevant(*F, St, 1, 32, &TargetInfo::ia64()));
}

//===----------------------------------------------------------------------===//
// Propagation (AnalyzeDEF Case 2) by kind.
//===----------------------------------------------------------------------===//

TEST(ConversionFactsTest, BitwisePropagationSplitsByKindAndTarget) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  B.and32(P, P, "j");
  const Instruction &And = lastIn(*F);
  const TargetInfo &IA64 = TargetInfo::ia64();
  const TargetInfo &X86 = TargetInfo::x86_64();

  std::vector<unsigned> Both = {0, 1};
  // Sign kind propagates through W32 bitwise ops where the machine writes
  // full registers, but not where the 32-bit write clears the upper half.
  EXPECT_EQ(defPropagatesExtension(*F, And, IA64, ExtKind::Sign, 32), Both);
  EXPECT_TRUE(defPropagatesExtension(*F, And, X86, ExtKind::Sign, 32).empty());
  // Zero kind propagates at any width on any target: zeros stay zeros.
  EXPECT_EQ(defPropagatesExtension(*F, And, IA64, ExtKind::Zero, 32), Both);
  EXPECT_EQ(defPropagatesExtension(*F, And, X86, ExtKind::Zero, 32), Both);
  EXPECT_EQ(defPropagatesExtension(*F, And, IA64, ExtKind::Zero, 8), Both);
}

TEST(ConversionFactsTest, ConversionPropagationByKindAndWidth) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  const TargetInfo &T = TargetInfo::ia64();
  std::vector<unsigned> Op0 = {0};

  B.sext(32, P, "s");
  const Instruction &S32 = lastIn(*F);
  // A wider sext preserves a narrower extension; the zero kind only
  // strictly below the conversion width (sext32 of a Zero@32 value can go
  // negative).
  EXPECT_EQ(defPropagatesExtension(*F, S32, T, ExtKind::Sign, 8), Op0);
  EXPECT_EQ(defPropagatesExtension(*F, S32, T, ExtKind::Zero, 16), Op0);
  EXPECT_TRUE(defPropagatesExtension(*F, S32, T, ExtKind::Zero, 32).empty());

  B.zext16(P, "c");
  const Instruction &Z16 = lastIn(*F);
  EXPECT_EQ(defPropagatesExtension(*F, Z16, T, ExtKind::Zero, 16), Op0);
  EXPECT_EQ(defPropagatesExtension(*F, Z16, T, ExtKind::Zero, 8), Op0);
  // Masking a negative sign-extended value plants ones in the middle bits.
  EXPECT_TRUE(defPropagatesExtension(*F, Z16, T, ExtKind::Sign, 16).empty());
}

//===----------------------------------------------------------------------===//
// Elimination of zero extensions and truncations.
//===----------------------------------------------------------------------===//

TEST(ConversionEliminationTest, RedundantCharRecanonicalizationDies) {
  // A char load is zero-extended on every modeled target, so re-canonicalizing
  // it with zext16 is redundant even though the i2d is a requiring use.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::F64);
  Reg A = F->addParam(Type::ArrayRef, "a");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg V = B.arrayLoad(Type::U16, A, Zero, "v");
  B.zextTo(V, 16, V); // Candidate: redundant (char)-cast.
  Reg D = B.i2d(V, "d");
  B.ret(D);
  ASSERT_TRUE(moduleVerifies(*M));

  EliminationStats S = eliminateBasic(*F);
  EXPECT_EQ(S.Eliminated, 1u);
  EXPECT_EQ(S.EliminatedZext, 1u);
  EXPECT_EQ(S.EliminatedSext, 0u);
  EXPECT_EQ(S.EliminatedTrunc, 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Zext16), 0u);
}

TEST(ConversionEliminationTest, GarbageCharStaysCanonicalized) {
  // A char variable written from a W32 add (garbage upper bits) really
  // needs its (char) cast before a requiring use.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::F64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.add32(P, P, "x");
  Reg C = F->newReg(Type::U16, "c");
  B.copyTo(C, X);
  B.zextTo(C, 16, C); // Candidate: must stay.
  Reg D = B.i2d(C, "d");
  B.ret(D);
  ASSERT_TRUE(moduleVerifies(*M));

  EliminationStats S = eliminateBasic(*F);
  EXPECT_EQ(S.Eliminated, 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Zext16), 1u);
}

TEST(ConversionEliminationTest, TruncOfZeroExtendedValueBecomesCopy) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Z = B.zext32(P, "z"); // Zero@32 by construction.
  Reg T = F->newReg(Type::I64, "t");
  B.trunc32To(T, Z); // Candidate: the narrowing is an identity.
  Reg S2 = B.add64(T, Z, "s");
  B.ret(S2);
  ASSERT_TRUE(moduleVerifies(*M));

  EliminationStats S = eliminateBasic(*F);
  EXPECT_EQ(S.EliminatedTrunc, 1u);
  EXPECT_EQ(countOpcode(*F, Opcode::Trunc32), 0u);
}

TEST(ConversionEliminationTest, TruncOfArbitraryLongIsARealNarrowing) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg L = F->addParam(Type::I64, "l");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg T = F->newReg(Type::I64, "t");
  B.trunc32To(T, L); // Candidate: must stay (l can exceed 2^32).
  Reg S2 = B.add64(T, L, "s");
  B.ret(S2);
  ASSERT_TRUE(moduleVerifies(*M));

  EliminationStats S = eliminateBasic(*F);
  EXPECT_EQ(S.EliminatedTrunc, 0u);
  EXPECT_EQ(countOpcode(*F, Opcode::Trunc32), 1u);
}

TEST(ConversionEliminationTest, X8664EliminatesSextAfterW32Arith) {
  // The headline x86-64 win: a W32 result is already Zero@32, hence
  // Sign@33+... but a sext32 candidate asks for Sign@32, which implicit
  // zero extension alone cannot prove. A shr32 result, however, is
  // Zero@32 on every target, and a *zext32* of it dies on all of them;
  // the x86-only win is the zext32 of a plain add result.
  auto build = [] {
    auto M = std::make_unique<Module>("m");
    Function *F = M->createFunction("f", Type::I64);
    Reg P = F->addParam(Type::I32, "p");
    IRBuilder B(F);
    B.startBlock("entry");
    Reg X = B.add32(P, P, "x");
    Reg W = B.zext32(X, "w"); // Candidate: redundant only on x86-64.
    B.ret(W);
    return M;
  };

  auto OnIA64 = build();
  EliminationStats S1 = eliminateBasic(*OnIA64->findFunction("f"),
                                       TargetInfo::ia64());
  EXPECT_EQ(S1.EliminatedZext, 0u);

  auto OnX86 = build();
  EliminationStats S2 = eliminateBasic(*OnX86->findFunction("f"),
                                       TargetInfo::x86_64());
  EXPECT_EQ(S2.EliminatedZext, 1u);
  EXPECT_EQ(countOpcode(*OnX86->findFunction("f"), Opcode::Zext32), 0u);
}

//===----------------------------------------------------------------------===//
// Verifier: conversions must be canonical for their destination type.
//===----------------------------------------------------------------------===//

bool verifyExpecting(const Module &M, const char *Fragment) {
  std::vector<std::string> Problems;
  if (verifyModule(M, Problems))
    return false;
  for (const std::string &P : Problems)
    if (P.find(Fragment) != std::string::npos)
      return true;
  ADD_FAILURE() << "verifier failed, but not with '" << Fragment
                << "': " << Problems.front();
  return false;
}

TEST(ConversionVerifierTest, RejectsTruncIntoSignedIntRegister) {
  // trunc32 can produce 0xFFFFFFFF, which is not a canonical I32 value.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg L = F->addParam(Type::I64, "l");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg D = F->newReg(Type::I32, "d");
  B.trunc32To(D, L);
  B.ret(L);
  EXPECT_TRUE(verifyExpecting(*M, "not canonical"));
}

TEST(ConversionVerifierTest, RejectsZextIntoSameWidthSignedRegister) {
  // zext16 can produce 0x8000..0xFFFF: Zero@16 fits I16 (Sign@16) only
  // strictly wider, so an I16 destination is ill-typed.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg P = F->addParam(Type::I32, "p");
  Reg L = F->addParam(Type::I64, "l");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg D = F->newReg(Type::I16, "d");
  B.zextTo(D, 16, P);
  B.ret(L);
  EXPECT_TRUE(verifyExpecting(*M, "not canonical"));
}

TEST(ConversionVerifierTest, RejectsSextIntoCharRegister) {
  // sext16 can produce a negative value; a char register is never negative.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg P = F->addParam(Type::I32, "p");
  Reg L = F->addParam(Type::I64, "l");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg D = F->newReg(Type::U16, "d");
  B.sextTo(D, 16, P);
  B.ret(L);
  EXPECT_TRUE(verifyExpecting(*M, "not canonical"));
}

TEST(ConversionVerifierTest, AcceptsCanonicalConversionDestinations) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I64);
  Reg P = F->addParam(Type::I32, "p");
  Reg L = F->addParam(Type::I64, "l");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C = F->newReg(Type::U16, "c");
  B.zextTo(C, 16, P);        // Char destination: exact.
  Reg W = F->newReg(Type::I32, "w");
  B.zextTo(W, 8, P);         // [0,255] fits a signed int.
  Reg N = F->newReg(Type::I16, "n");
  B.sextTo(N, 8, P);         // Sign@8 fits Sign@16.
  Reg T = F->newReg(Type::I64, "t");
  B.trunc32To(T, L);         // Full-width destination: anything goes.
  B.ret(L);
  EXPECT_TRUE(moduleVerifies(*M));
}

//===----------------------------------------------------------------------===//
// Unsigned edge cases: Java-oracle parity across every variant and target.
//===----------------------------------------------------------------------===//

/// A handcrafted module packing the unsigned edge cases into one checksum:
/// zext of negative-looking bit patterns, trunc32 of values exceeding 2^32,
/// unsigned compares after zero extension, and values routed through long[]
/// and char[] memory.
std::unique_ptr<Module> buildUnsignedEdgeModule() {
  auto M = std::make_unique<Module>("unsigned_edges");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");

  Reg Sum = B.constI64(0, "sum");

  // (char)-1 == 0xFFFF and (-1 & 0xFF) == 255: zero extension of all-ones.
  Reg MinusOne = B.constI32(-1, "m1");
  Reg CharAll = B.zext16(MinusOne, "c_all");
  Reg ByteAll = B.zext8(MinusOne, "b_all");
  Sum = B.add64(Sum, B.zext32(CharAll, "c64"), "sum");
  Sum = B.add64(Sum, B.zext32(ByteAll, "b64"), "sum");

  // trunc32 of values exceeding 2^32, including one with bit 31 set.
  Reg BigLow = B.constI64((int64_t(1) << 40) + 123, "big_low");
  Sum = B.add64(Sum, B.trunc32(BigLow, "t_low"), "sum");
  Reg BigHigh = B.constI64(int64_t(0x1CAFEBABE9), "big_high");
  Sum = B.add64(Sum, B.trunc32(BigHigh, "t_high"), "sum");

  // Unsigned compares over sign-set patterns: 0xFFFFFFFF is unsigned-max,
  // 0xFFFF is larger than 255 only unsigned.
  Reg Three = B.constI32(3, "three");
  Reg C1 = B.cmp32(CmpPred::ULT, MinusOne, Three, "ult"); // 0
  Reg C2 = B.cmp32(CmpPred::UGE, MinusOne, Three, "uge"); // 1
  Reg C3 = B.cmp32(CmpPred::UGT, CharAll, ByteAll, "ugt"); // 1
  Sum = B.add64(Sum, B.zext32(C1, "c1w"), "sum");
  Sum = B.add64(Sum, B.zext32(C2, "c2w"), "sum");
  Sum = B.add64(Sum, B.zext32(C3, "c3w"), "sum");

  // Route operands through memory: a long[] round trip past 2^32, and a
  // char[] round trip of the all-ones char.
  Reg Len = B.constI32(8, "len");
  Reg Idx = B.constI32(3, "idx");
  Reg Wide = B.newArray(Type::I64, Len, "wide");
  B.arrayStore(Type::I64, Wide, Idx, Sum);
  Reg Re = B.arrayLoad(Type::I64, Wide, Idx, "re");
  Sum = B.add64(Sum, B.trunc32(Re, "t_mem"), "sum");

  Reg Chars = B.newArray(Type::U16, Len, "chars");
  B.arrayStore(Type::U16, Chars, Idx, CharAll);
  Reg Rc = B.arrayLoad(Type::U16, Chars, Idx, "rc");
  Reg Half = B.constI32(0x7FFF, "half");
  Reg C4 = B.cmp32(CmpPred::UGT, Rc, Half, "mem_ugt"); // 1
  Sum = B.add64(Sum, B.zext32(C4, "c4w"), "sum");

  B.ret(Sum);
  return M;
}

TEST(ConversionParityTest, UnsignedEdgeCasesMatchOracleEverywhere) {
  std::unique_ptr<Module> M = buildUnsignedEdgeModule();
  ASSERT_TRUE(moduleVerifies(*M));

  // All twelve variants x all four targets against the Java oracle.
  DiffResult R = runDifferentialTest(*M);
  EXPECT_EQ(R.OracleTrap, TrapKind::None);
  EXPECT_TRUE(R.ok()) << (R.Failure ? R.Failure->describe() : "");
}

TEST(ConversionParityTest, PristineMachineSemanticsMatchOracle) {
  // Even before any pipeline runs, the explicit-cast discipline makes the
  // pristine module's machine execution agree with Java semantics on every
  // target, including the implicit-zero-extension one.
  std::unique_ptr<Module> M = buildUnsignedEdgeModule();
  ASSERT_TRUE(moduleVerifies(*M));

  InterpOptions Java;
  Java.Semantics = ExecSemantics::Java;
  ExecResult Oracle = Interpreter(*M, Java).run("main");
  ASSERT_EQ(Oracle.Trap, TrapKind::None);

  for (const TargetInfo *T :
       {&TargetInfo::ia64(), &TargetInfo::ppc64(), &TargetInfo::generic64(),
        &TargetInfo::x86_64()}) {
    InterpOptions Machine;
    Machine.Target = T;
    ExecResult Got = Interpreter(*M, Machine).run("main");
    EXPECT_EQ(Got.Trap, TrapKind::None) << T->name();
    EXPECT_EQ(Got.ReturnValue, Oracle.ReturnValue) << T->name();
  }
}

//===----------------------------------------------------------------------===//
// Generalized conversion census: the pipeline never adds conversions.
//===----------------------------------------------------------------------===//

TEST(ConversionCensusTest, PipelineNeverIncreasesConversionCensus) {
  for (const TargetInfo *T :
       {&TargetInfo::ia64(), &TargetInfo::ppc64(), &TargetInfo::generic64(),
        &TargetInfo::x86_64()}) {
    std::unique_ptr<Module> Pristine = buildUnsignedEdgeModule();

    auto Base = cloneModule(*Pristine);
    runPipeline(*Base, PipelineConfig::forVariant(Variant::Baseline, *T));
    auto All = cloneModule(*Pristine);
    runPipeline(*All, PipelineConfig::forVariant(Variant::All, *T));

    EXPECT_TRUE(moduleVerifies(*All, /*AllowDummies=*/false)) << T->name();
    EXPECT_LE(countStaticExtensions(*All).totalConversions(),
              countStaticExtensions(*Base).totalConversions())
        << T->name();
  }
}

} // namespace
