//===- tests/ppc64_test.cpp - PPC64 target differential sweep ------------------------===//
//
// The paper's Section 1 contrast: PPC64 has implicit sign extension on
// loads (lwa/lha), so fewer extensions are generated, yet explicit
// extensions are still needed for computed values — and the same
// elimination algorithm applies. This sweep runs a sample of kernels on
// the PPC64 model under every variant, with the same oracle checks as
// the IA64 sweep, and checks the implicit-extension advantage.
//
//===-----------------------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

class PPC64Sweep : public ::testing::TestWithParam<const char *> {};

TEST_P(PPC64Sweep, AllVariantsMatchOracleOnPPC64) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);

  RunnerOptions PPC;
  PPC.Target = &TargetInfo::ppc64();
  WorkloadReport Report = runWorkload(*W, PPC);

  for (const VariantRow &Row : Report.Rows) {
    EXPECT_EQ(Row.Trap, TrapKind::None)
        << W->Name << " / " << variantName(Row.V);
    EXPECT_EQ(Row.Checksum, Report.OracleChecksum)
        << W->Name << " / " << variantName(Row.V);
  }

  const VariantRow *Baseline = Report.row(Variant::Baseline);
  const VariantRow *All = Report.row(Variant::All);
  ASSERT_TRUE(Baseline && All);
  EXPECT_LT(All->DynamicSext32, Baseline->DynamicSext32) << W->Name;
}

TEST_P(PPC64Sweep, ImplicitExtensionLowersTheBaseline) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);

  RunnerOptions IA64Options;
  IA64Options.Variants = {Variant::Baseline};
  WorkloadReport OnIA64 = runWorkload(*W, IA64Options);

  RunnerOptions PPCOptions;
  PPCOptions.Target = &TargetInfo::ppc64();
  PPCOptions.Variants = {Variant::Baseline};
  WorkloadReport OnPPC = runWorkload(*W, PPCOptions);

  // lwa/lha make every int/short load arrive extended: the PPC64
  // baseline executes no more extensions than IA64's, and strictly
  // fewer on load-heavy kernels.
  EXPECT_LE(OnPPC.row(Variant::Baseline)->DynamicSext32,
            OnIA64.row(Variant::Baseline)->DynamicSext32)
      << W->Name;
}

INSTANTIATE_TEST_SUITE_P(Kernels, PPC64Sweep,
                         ::testing::Values("Numeric Sort", "Huffman",
                                           "compress", "IDEA", "db"),
                         [](const ::testing::TestParamInfo<const char *>
                                &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

} // namespace
