//===- tests/paper_examples_test.cpp - The paper's running examples -----------===//
//
// Every worked example in the paper is reconstructed in IR and the
// optimized output is checked against the result the paper derives:
//
//  - Figure 3 / footnote 1: the first algorithm eliminates (1), (5), (7)
//    and keeps (3), (9).
//  - Figures 7 and 8: the new algorithm leaves exactly one extension,
//    outside the loop (Figure 8(b)); without insertion one stays inside
//    the loop (Figure 8(a)).
//  - Figure 9: with order determination, the in-loop extension is
//    eliminated (Result 1).
//
//===-----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "sxe/Pipeline.h"
#include "target/StaticCounts.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

using namespace sxe;
using namespace sxe::test;

namespace {

/// Figure 7(a): the paper's running example.
///
///   int t = 0; int i = src[0];
///   do { i = i - 1; j = a[i]; j = j & 0x0fffffff; t += j; }
///   while (i > start);
///   return (double) t;
///
/// The caller passes `src` (a one-element array holding the initial i),
/// the data array `a`, and `start`.
std::unique_ptr<Module> buildFigure7() {
  auto M = std::make_unique<Module>("figure7");
  Function *F = M->createFunction("fig7", Type::F64);
  Reg Src = F->addParam(Type::ArrayRef, "src");
  Reg A = F->addParam(Type::ArrayRef, "a");
  Reg Start = F->addParam(Type::I32, "start");

  IRBuilder B(F);
  BasicBlock *Entry = B.startBlock("entry");
  Reg Zero = B.constI32(0, "zero");
  Reg I = B.arrayLoad(Type::I32, Src, Zero, "i");
  Reg T = B.copy(Zero, "t");
  Reg One = B.constI32(1, "one");
  Reg C = B.constI32(0x0FFFFFFF, "C");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Loop);
  (void)Entry;

  B.setBlock(Loop);
  B.binopTo(I, Opcode::Sub, Width::W32, I, One);
  Reg J = B.arrayLoad(Type::I32, A, I, "j");
  B.binopTo(J, Opcode::And, Width::W32, J, C);
  B.binopTo(T, Opcode::Add, Width::W32, T, J);
  Reg Cond = B.cmp32(CmpPred::SGT, I, Start);
  B.br(Cond, Loop, Exit);

  B.setBlock(Exit);
  Reg D = B.i2d(T, "d");
  B.ret(D);
  return M;
}

/// Wraps buildFigure7 with a main() that allocates the arrays: a has 64
/// elements a[k] = k*3+1, src[0] = 40, start = 5.
std::unique_ptr<Module> buildFigure7WithMain() {
  auto M = buildFigure7();
  Function *Fig7 = M->findFunction("fig7");
  Function *Main = M->createFunction("main", Type::F64);
  IRBuilder B(Main);
  B.startBlock("entry");
  Reg Len = B.constI32(64);
  Reg A = B.newArray(Type::I32, Len, "a");
  Reg OneElem = B.constI32(1);
  Reg Src = B.newArray(Type::I32, OneElem, "src");
  Reg Zero = B.constI32(0);
  Reg Init = B.constI32(40);
  B.arrayStore(Type::I32, Src, Zero, Init);

  // for k in 0..63: a[k] = 3k+1
  Reg K = B.copy(Zero, "k");
  Reg Three = B.constI32(3);
  Reg One = B.constI32(1);
  BasicBlock *Fill = Main->createBlock("fill");
  BasicBlock *Call = Main->createBlock("call");
  B.jmp(Fill);
  B.setBlock(Fill);
  Reg V = B.mul32(K, Three, "v");
  B.binopTo(V, Opcode::Add, Width::W32, V, One);
  B.arrayStore(Type::I32, A, K, V);
  B.binopTo(K, Opcode::Add, Width::W32, K, One);
  Reg Cond = B.cmp32(CmpPred::SLT, K, Len);
  B.br(Cond, Fill, Call);

  B.setBlock(Call);
  Reg Start = B.constI32(5);
  Reg Result = Main->newReg(Type::F64, "result");
  B.callTo(Result, Fig7, {Src, A, Start});
  B.ret(Result);
  return M;
}

TEST(PaperExamples, Figure7NewAlgorithmLeavesOneExtendOutsideLoop) {
  auto M = buildFigure7WithMain();
  ASSERT_TRUE(moduleVerifies(*M));

  PipelineConfig Config = PipelineConfig::forVariant(Variant::All);
  runPipeline(*M, Config);
  ASSERT_TRUE(moduleVerifies(*M, /*AllowDummies=*/false));

  Function *F = M->findFunction("fig7");
  // Figure 8(b): the loop body holds no extension; exactly one sext32
  // survives, before the (double) conversion outside the loop.
  EXPECT_EQ(countSext(*F->findBlock("loop")), 0u)
      << printFunction(*F);
  EXPECT_EQ(countSext(*F->findBlock("exit")), 1u)
      << printFunction(*F);
  EXPECT_EQ(countSext(*F->findBlock("entry")), 0u)
      << printFunction(*F);
  EXPECT_EQ(countDummies(*F), 0u);
}

TEST(PaperExamples, Figure8aWithoutInsertionExtendStaysInLoop) {
  auto M = buildFigure7WithMain();
  PipelineConfig Config = PipelineConfig::forVariant(Variant::ArrayOrder);
  runPipeline(*M, Config);

  Function *F = M->findFunction("fig7");
  // Figure 8(a): without insertion, t's extension stays inside the loop.
  EXPECT_EQ(countSext(*F->findBlock("loop")), 1u) << printFunction(*F);
  EXPECT_EQ(countSext(*F->findBlock("exit")), 0u) << printFunction(*F);
}

TEST(PaperExamples, Figure3FirstAlgorithmKeepsArrayIndexExtension) {
  auto M = buildFigure7WithMain();
  PipelineConfig Config = PipelineConfig::forVariant(Variant::FirstAlgorithm);
  runPipeline(*M, Config);

  Function *F = M->findFunction("fig7");
  // Footnote 1: (3) for the subscript and (9) for t stay in the loop;
  // (1), (5), (7) go away.
  EXPECT_EQ(countSext(*F->findBlock("loop")), 2u) << printFunction(*F);
  EXPECT_EQ(countSext(*F->findBlock("entry")), 0u) << printFunction(*F);
}

TEST(PaperExamples, Figure7AllVariantsComputeTheSameResult) {
  auto Pristine = buildFigure7WithMain();

  // Oracle: Java-semantics execution of the unoptimized program.
  InterpOptions JavaOptions;
  JavaOptions.Semantics = ExecSemantics::Java;
  Interpreter Oracle(*Pristine, JavaOptions);
  ExecResult Expected = Oracle.run("main");
  ASSERT_EQ(Expected.Trap, TrapKind::None);

  for (Variant V : AllVariants) {
    auto Clone = cloneModule(*Pristine);
    PipelineConfig Config = PipelineConfig::forVariant(V);
    runPipeline(*Clone, Config);

    Interpreter Interp(*Clone, InterpOptions{});
    ExecResult Actual = Interp.run("main");
    EXPECT_EQ(Actual.Trap, TrapKind::None) << variantName(V);
    EXPECT_EQ(Actual.ReturnValue, Expected.ReturnValue) << variantName(V);
  }
}

TEST(PaperExamples, Figure7DynamicCountsShrinkAcrossVariants) {
  auto Pristine = buildFigure7WithMain();

  auto dynamicSext = [&](Variant V) {
    auto Clone = cloneModule(*Pristine);
    PipelineConfig Config = PipelineConfig::forVariant(V);
    runPipeline(*Clone, Config);
    Interpreter Interp(*Clone, InterpOptions{});
    ExecResult R = Interp.run("main");
    EXPECT_EQ(R.Trap, TrapKind::None) << variantName(V);
    return R.ExecutedSext32;
  };

  uint64_t Baseline = dynamicSext(Variant::Baseline);
  uint64_t First = dynamicSext(Variant::FirstAlgorithm);
  uint64_t Array = dynamicSext(Variant::Array);
  uint64_t All = dynamicSext(Variant::All);

  EXPECT_GT(Baseline, 0u);
  EXPECT_LT(First, Baseline);
  EXPECT_LT(Array, First);
  EXPECT_LE(All, Array);
  // Figure 8(b): only the one extension before (double)t remains, executed
  // once per call.
  EXPECT_EQ(All, 1u);
}

/// Figure 9(a):
///   i = j + k; i = extend(i);
///   do { i = i + 1; i = extend(i); a[i] = 0; } while (i < end);
TEST(PaperExamples, Figure9OrderDeterminationPrefersLoopExtension) {
  auto M = std::make_unique<Module>("figure9");
  Function *F = M->createFunction("fig9", Type::I32);
  Reg A = F->addParam(Type::ArrayRef, "a");
  Reg JP = F->addParam(Type::I32, "j");
  Reg KP = F->addParam(Type::I32, "k");
  Reg End = F->addParam(Type::I32, "end");

  IRBuilder B(F);
  B.startBlock("entry");
  Reg I = B.add32(JP, KP, "i");
  Reg One = B.constI32(1);
  Reg Zero = B.constI32(0);
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Loop);

  B.setBlock(Loop);
  B.binopTo(I, Opcode::Add, Width::W32, I, One);
  B.arrayStore(Type::I32, A, I, Zero);
  Reg Cond = B.cmp32(CmpPred::SLT, I, End);
  B.br(Cond, Loop, Exit);

  B.setBlock(Exit);
  B.ret(Zero);

  PipelineConfig Config = PipelineConfig::forVariant(Variant::ArrayOrder);
  runPipeline(*M, Config);
  ASSERT_TRUE(moduleVerifies(*M, /*AllowDummies=*/false));

  // Result 1 (Figure 9(b)): the loop extension is gone, the entry one
  // stays.
  EXPECT_EQ(countSext(*F->findBlock("loop")), 0u) << printFunction(*F);
  EXPECT_EQ(countSext(*F->findBlock("entry")), 1u) << printFunction(*F);
}

TEST(PaperExamples, Figure7MachineOracleMatchesJavaOracle) {
  auto M = buildFigure7WithMain();
  InterpOptions Machine;
  InterpOptions Java;
  Java.Semantics = ExecSemantics::Java;

  // The unconverted 32-bit form is not generally executable with machine
  // semantics, but after baseline conversion it must match Java exactly.
  PipelineConfig Config = PipelineConfig::forVariant(Variant::Baseline);
  runPipeline(*M, Config);

  ExecResult RM = Interpreter(*M, Machine).run("main");
  ExecResult RJ = Interpreter(*M, Java).run("main");
  EXPECT_EQ(RM.Trap, TrapKind::None);
  EXPECT_EQ(RM.ReturnValue, RJ.ReturnValue);
}

} // namespace
