//===- tests/support_test.cpp - Support library tests -------------------------------===//

#include "support/Arena.h"
#include "support/EpochIndexSet.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/RNG.h"
#include "support/Timer.h"
#include "target/CostModel.h"
#include "ir/IRBuilder.h"

#include <string>
#include <gtest/gtest.h>

using namespace sxe;

namespace {

TEST(FormatTest, Commas) {
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(7), "7");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(1000), "1,000");
  EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(formatWithCommas(1000000000ull), "1,000,000,000");
}

TEST(FormatTest, PercentAndFixed) {
  EXPECT_EQ(formatPercent(0.4099), "40.99%");
  EXPECT_EQ(formatPercent(1.0, 0), "100%");
  EXPECT_EQ(formatFixed(3.14159, 3), "3.142");
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(RNGTest, DeterministicAndBounded) {
  RNG A(42), B(42);
  for (int Trial = 0; Trial < 100; ++Trial)
    EXPECT_EQ(A.next(), B.next());

  RNG R(7);
  for (int Trial = 0; Trial < 1000; ++Trial) {
    EXPECT_LT(R.nextBelow(17), 17u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNGTest, RoughlyUniform) {
  RNG R(1234);
  int Buckets[8] = {0};
  for (int Trial = 0; Trial < 8000; ++Trial)
    ++Buckets[R.nextBelow(8)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, 700);
    EXPECT_LT(Count, 1300);
  }
}

TEST(TimerTest, Accumulates) {
  Timer T;
  T.start();
  volatile unsigned Sink = 0;
  for (unsigned K = 0; K < 100000; ++K)
    Sink = Sink + K;
  T.stop();
  uint64_t First = T.elapsedNanos();
  EXPECT_GT(First, 0u);
  {
    TimerScope Scope(T);
    for (unsigned K = 0; K < 100000; ++K)
      Sink = Sink + K;
  }
  EXPECT_GT(T.elapsedNanos(), First);
  T.reset();
  EXPECT_EQ(T.elapsedNanos(), 0u);
}

TEST(CostModelTest, RelativeCosts) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  Reg A = F->addParam(Type::ArrayRef, "a");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Add = B.add32(P, P);
  Reg Div = B.div32(P, P);
  Reg Load = B.arrayLoad(Type::I32, A, P);
  Reg Ext = F->newReg(Type::I32, "e");
  Instruction *SextI = B.sextTo(Ext, 32, P);
  B.ret(Add);
  (void)Div;
  (void)Load;

  const TargetInfo &T = TargetInfo::ia64();
  const Instruction *AddI = nullptr, *DivI = nullptr, *LoadI = nullptr;
  for (const Instruction &I : *F->entryBlock()) {
    if (I.opcode() == Opcode::Add)
      AddI = &I;
    if (I.opcode() == Opcode::Div)
      DivI = &I;
    if (I.opcode() == Opcode::ArrayLoad)
      LoadI = &I;
  }
  // A sign extension costs exactly one ALU cycle.
  EXPECT_EQ(instructionCycleCost(*SextI, T), 1u);
  EXPECT_EQ(instructionCycleCost(*AddI, T), 1u);
  EXPECT_GT(instructionCycleCost(*DivI, T),
            instructionCycleCost(*LoadI, T));
  // IA64's shladd makes the access one cycle cheaper than PPC64's
  // separate shift+add.
  EXPECT_LT(instructionCycleCost(*LoadI, TargetInfo::ia64()),
            instructionCycleCost(*LoadI, TargetInfo::ppc64()));

  // Dummies never reach code.
  Instruction Dummy(Opcode::JustExtended);
  Dummy.setDest(P);
  Dummy.addOperand(P);
  EXPECT_EQ(instructionCycleCost(Dummy, T), 0u);
}

// --- JSON string escaping (RFC 8259) and the parser ---------------------------

/// Parses the single JSON string produced by JsonWriter::quote back into
/// its decoded value.
std::string quoteRoundTrip(const std::string &Raw) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(JsonWriter::quote(Raw), V, Error))
      << Error << " for " << JsonWriter::quote(Raw);
  EXPECT_TRUE(V.isString());
  return V.stringValue();
}

TEST(JsonTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(JsonWriter::quote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonWriter::quote("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(JsonWriter::quote("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(JsonWriter::quote("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(JsonWriter::quote("back\\slash"), "\"back\\\\slash\"");
  // Bare control bytes become \u escapes, not raw bytes.
  EXPECT_EQ(JsonWriter::quote(std::string("a\001b", 3)), "\"a\\u0001b\"");
  EXPECT_EQ(JsonWriter::quote(std::string("a\x1f", 2)), "\"a\\u001f\"");
  EXPECT_EQ(JsonWriter::quote(std::string("nul\0!", 5)), "\"nul\\u0000!\"");
}

TEST(JsonTest, QuotePassesValidUtf8Through) {
  // 2-, 3-, and 4-byte sequences survive unescaped.
  EXPECT_EQ(JsonWriter::quote("caf\xC3\xA9"), "\"caf\xC3\xA9\"");
  EXPECT_EQ(JsonWriter::quote("\xE2\x82\xAC"), "\"\xE2\x82\xAC\"");
  EXPECT_EQ(JsonWriter::quote("\xF0\x9F\x98\x80"), "\"\xF0\x9F\x98\x80\"");
}

TEST(JsonTest, QuoteMapsInvalidBytesToLatin1Escapes) {
  // A lone continuation byte, a truncated lead, an overlong encoding, and
  // a CESU-8 surrogate must not produce invalid JSON output.
  EXPECT_EQ(JsonWriter::quote(std::string("\x80", 1)), "\"\\u0080\"");
  EXPECT_EQ(JsonWriter::quote(std::string("\xC3", 1)), "\"\\u00c3\"");
  EXPECT_EQ(JsonWriter::quote(std::string("\xC0\xAF", 2)),
            "\"\\u00c0\\u00af\"");
  EXPECT_EQ(JsonWriter::quote(std::string("\xED\xA0\x80", 3)),
            "\"\\u00ed\\u00a0\\u0080\"");
}

TEST(JsonTest, QuoteFuzzEveryByteValueParsesBack) {
  // Fuzz-ish: random byte strings — including every byte value — must
  // always produce output the strict parser accepts.
  RNG Rng(0x5eed);
  for (unsigned Round = 0; Round < 200; ++Round) {
    std::string Raw;
    unsigned Len = static_cast<unsigned>(Rng.nextBelow(32));
    for (unsigned I = 0; I < Len; ++I)
      Raw.push_back(static_cast<char>(Rng.nextBelow(256)));
    JsonValue V;
    std::string Error;
    ASSERT_TRUE(parseJson(JsonWriter::quote(Raw), V, Error))
        << Error << " for round " << Round;
    ASSERT_TRUE(V.isString());
  }
  // ASCII and valid UTF-8 round-trip exactly.
  EXPECT_EQ(quoteRoundTrip("plain ascii 123"), "plain ascii 123");
  EXPECT_EQ(quoteRoundTrip("tab\there\nline"), "tab\there\nline");
  EXPECT_EQ(quoteRoundTrip("caf\xC3\xA9"), "caf\xC3\xA9");
}

TEST(JsonTest, ParserAcceptsDocuments) {
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"e\": \"\\u0041\\u00e9\\ud83d\\ude00\"}",
      V, Error))
      << Error;
  ASSERT_TRUE(V.isObject());
  const JsonValue *A = V.find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->array().size(), 3u);
  EXPECT_EQ(A->array()[0].numberValue(), 1.0);
  EXPECT_EQ(A->array()[2].numberValue(), -300.0);
  const JsonValue *B = V.find("b");
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(B->find("c")->boolValue());
  EXPECT_TRUE(B->find("d")->isNull());
  // \u escapes decode to UTF-8, including a surrogate pair.
  EXPECT_EQ(V.stringField("e"), "A\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  const char *Bad[] = {
      "",           "{",           "[1, ]",     "{\"a\": }",
      "{\"a\" 1}",  "[1 2]",       "01",        "1.",
      "+1",         "\"unclosed",  "tru",       "nul",
      "{} garbage", "\"\\ud800\"", // Lone high surrogate.
      "\"\\x41\"",                 // Invalid escape.
  };
  for (const char *Text : Bad) {
    JsonValue V;
    std::string Error;
    EXPECT_FALSE(parseJson(Text, V, Error)) << "accepted: " << Text;
  }
}

TEST(ArenaTest, AllocationsAreAlignedAndCounted) {
  Arena A;
  void *P8 = A.allocate(3, 8);
  void *P16 = A.allocate(24, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P16) % 16, 0u);
  EXPECT_EQ(A.bytesAllocated(), 27u);
  EXPECT_GE(A.bytesReserved(), A.bytesAllocated());
}

TEST(ArenaTest, ResetReusesTheFirstSlab) {
  Arena A;
  void *First = A.allocate(64, 8);
  // Force slab growth so reset has something to rewind across.
  for (int I = 0; I < 1000; ++I)
    A.allocate(256, 8);
  size_t Slabs = A.numSlabs();
  EXPECT_GT(Slabs, 1u);

  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.numSlabs(), Slabs) << "reset must keep reserved memory";
  void *Again = A.allocate(64, 8);
  EXPECT_EQ(Again, First) << "reset must rewind to the first slab";
}

TEST(ArenaTest, CreatePlacesObjects) {
  struct Pair {
    int A;
    int B;
  };
  Arena A;
  Pair *P = A.create<Pair>(Pair{3, 4});
  EXPECT_EQ(P->A, 3);
  EXPECT_EQ(P->B, 4);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % alignof(Pair), 0u);
}

TEST(EpochIndexSetTest, TestAndSetMatchesInsertIdiom) {
  EpochIndexSet S;
  S.reserve(16);
  EXPECT_FALSE(S.testAndSet(3));
  EXPECT_TRUE(S.testAndSet(3));
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(S.contains(4));
  EXPECT_EQ(S.size(), 1u);
}

TEST(EpochIndexSetTest, ClearEmptiesWithoutTouchingMarks) {
  EpochIndexSet S;
  S.reserve(8);
  S.testAndSet(1);
  S.testAndSet(7);
  S.clear();
  EXPECT_EQ(S.size(), 0u);
  EXPECT_FALSE(S.contains(1));
  EXPECT_FALSE(S.testAndSet(7)) << "cleared keys must insert fresh";
}

TEST(EpochIndexSetTest, AutoGrowsPastReserve) {
  EpochIndexSet S;
  S.reserve(4);
  EXPECT_FALSE(S.testAndSet(100));
  EXPECT_TRUE(S.contains(100));
}

TEST(EpochIndexSetTest, RollbackDiscardsSpeculativeInserts) {
  EpochIndexSet S;
  S.reserve(32);
  S.testAndSet(1);
  S.testAndSet(2);
  size_t W = S.watermark();
  S.testAndSet(10);
  S.testAndSet(11);
  EXPECT_EQ(S.size(), 4u);
  S.rollback(W);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(1));
  EXPECT_TRUE(S.contains(2));
  EXPECT_FALSE(S.contains(10));
  EXPECT_FALSE(S.contains(11));
  // Rolled-back keys can be re-inserted and re-rolled-back repeatedly
  // (the And-node speculation pattern).
  EXPECT_FALSE(S.testAndSet(10));
  S.rollback(W);
  EXPECT_FALSE(S.contains(10));
}

} // namespace
