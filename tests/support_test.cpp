//===- tests/support_test.cpp - Support library tests -------------------------------===//

#include "support/Format.h"
#include "support/RNG.h"
#include "support/Timer.h"
#include "target/CostModel.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

TEST(FormatTest, Commas) {
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(7), "7");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(1000), "1,000");
  EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(formatWithCommas(1000000000ull), "1,000,000,000");
}

TEST(FormatTest, PercentAndFixed) {
  EXPECT_EQ(formatPercent(0.4099), "40.99%");
  EXPECT_EQ(formatPercent(1.0, 0), "100%");
  EXPECT_EQ(formatFixed(3.14159, 3), "3.142");
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(RNGTest, DeterministicAndBounded) {
  RNG A(42), B(42);
  for (int Trial = 0; Trial < 100; ++Trial)
    EXPECT_EQ(A.next(), B.next());

  RNG R(7);
  for (int Trial = 0; Trial < 1000; ++Trial) {
    EXPECT_LT(R.nextBelow(17), 17u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNGTest, RoughlyUniform) {
  RNG R(1234);
  int Buckets[8] = {0};
  for (int Trial = 0; Trial < 8000; ++Trial)
    ++Buckets[R.nextBelow(8)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, 700);
    EXPECT_LT(Count, 1300);
  }
}

TEST(TimerTest, Accumulates) {
  Timer T;
  T.start();
  volatile unsigned Sink = 0;
  for (unsigned K = 0; K < 100000; ++K)
    Sink = Sink + K;
  T.stop();
  uint64_t First = T.elapsedNanos();
  EXPECT_GT(First, 0u);
  {
    TimerScope Scope(T);
    for (unsigned K = 0; K < 100000; ++K)
      Sink = Sink + K;
  }
  EXPECT_GT(T.elapsedNanos(), First);
  T.reset();
  EXPECT_EQ(T.elapsedNanos(), 0u);
}

TEST(CostModelTest, RelativeCosts) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  Reg A = F->addParam(Type::ArrayRef, "a");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Add = B.add32(P, P);
  Reg Div = B.div32(P, P);
  Reg Load = B.arrayLoad(Type::I32, A, P);
  Reg Ext = F->newReg(Type::I32, "e");
  Instruction *SextI = B.sextTo(Ext, 32, P);
  B.ret(Add);
  (void)Div;
  (void)Load;

  const TargetInfo &T = TargetInfo::ia64();
  const Instruction *AddI = nullptr, *DivI = nullptr, *LoadI = nullptr;
  for (const Instruction &I : *F->entryBlock()) {
    if (I.opcode() == Opcode::Add)
      AddI = &I;
    if (I.opcode() == Opcode::Div)
      DivI = &I;
    if (I.opcode() == Opcode::ArrayLoad)
      LoadI = &I;
  }
  // A sign extension costs exactly one ALU cycle.
  EXPECT_EQ(instructionCycleCost(*SextI, T), 1u);
  EXPECT_EQ(instructionCycleCost(*AddI, T), 1u);
  EXPECT_GT(instructionCycleCost(*DivI, T),
            instructionCycleCost(*LoadI, T));
  // IA64's shladd makes the access one cycle cheaper than PPC64's
  // separate shift+add.
  EXPECT_LT(instructionCycleCost(*LoadI, TargetInfo::ia64()),
            instructionCycleCost(*LoadI, TargetInfo::ppc64()));

  // Dummies never reach code.
  Instruction Dummy(Opcode::JustExtended);
  Dummy.setDest(P);
  Dummy.addOperand(P);
  EXPECT_EQ(instructionCycleCost(Dummy, T), 0u);
}

} // namespace
