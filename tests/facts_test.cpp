//===- tests/facts_test.cpp - ExtensionFacts table tests --------------------------===//

#include "ir/IRBuilder.h"
#include "sxe/ExtensionFacts.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

/// Builds one instruction inside a scratch function and hands it to the
/// checker.
struct FactsFixture {
  std::unique_ptr<Module> M{std::make_unique<Module>("m")};
  Function *F{M->createFunction("f", Type::F64)};
  Reg IntP{F->addParam(Type::I32, "i")};
  Reg IntQ{F->addParam(Type::I32, "j")};
  Reg LongP{F->addParam(Type::I64, "l")};
  Reg ByteP{F->addParam(Type::I8, "b")};
  Reg CharP{F->addParam(Type::U16, "c")};
  Reg DblP{F->addParam(Type::F64, "d")};
  Reg ArrP{F->addParam(Type::ArrayRef, "a")};
  IRBuilder B{F};

  FactsFixture() { B.startBlock("entry"); }

  const Instruction &last() { return F->entryBlock()->back(); }
  const TargetInfo &T = TargetInfo::ia64();
};

TEST(FactsTest, CanonicalRegBits) {
  FactsFixture Fx;
  EXPECT_EQ(canonicalRegBits(*Fx.F, Fx.IntP), 32u);
  EXPECT_EQ(canonicalRegBits(*Fx.F, Fx.ByteP), 8u);
  EXPECT_EQ(canonicalRegBits(*Fx.F, Fx.CharP), 16u); // Chars: zero @ 16.
  EXPECT_EQ(canonicalRegBits(*Fx.F, Fx.LongP), 0u);
  EXPECT_EQ(canonicalRegBits(*Fx.F, Fx.DblP), 0u);

  EXPECT_EQ(canonicalRegExt(*Fx.F, Fx.IntP).Kind, ExtKind::Sign);
  EXPECT_EQ(canonicalRegExt(*Fx.F, Fx.CharP).Kind, ExtKind::Zero);
  EXPECT_EQ(canonicalConversionOpcode(*Fx.F, Fx.IntP), Opcode::Sext32);
  EXPECT_EQ(canonicalConversionOpcode(*Fx.F, Fx.ByteP), Opcode::Sext8);
  EXPECT_EQ(canonicalConversionOpcode(*Fx.F, Fx.CharP), Opcode::Zext16);
}

TEST(FactsTest, RequiringUses) {
  FactsFixture Fx;
  auto &B = Fx.B;

  B.i2d(Fx.IntP);
  EXPECT_TRUE(requiresExtendedOperand(*Fx.F, Fx.last(), 0, Fx.T));

  B.binop(Opcode::Add, Width::W64, Fx.IntP, Fx.LongP);
  EXPECT_TRUE(requiresExtendedOperand(*Fx.F, Fx.last(), 0, Fx.T));
  EXPECT_FALSE(requiresExtendedOperand(*Fx.F, Fx.last(), 1, Fx.T)); // I64.

  B.div32(Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(requiresExtendedOperand(*Fx.F, Fx.last(), 0, Fx.T));
  EXPECT_TRUE(requiresExtendedOperand(*Fx.F, Fx.last(), 1, Fx.T));

  Reg Wide = Fx.F->newReg(Type::I64, "w");
  B.copyTo(Wide, Fx.IntP); // Widening copy.
  EXPECT_TRUE(requiresExtendedOperand(*Fx.F, Fx.last(), 0, Fx.T));

  B.newArray(Type::I32, Fx.IntP);
  EXPECT_TRUE(requiresExtendedOperand(*Fx.F, Fx.last(), 0, Fx.T));

  B.arrayLoad(Type::I32, Fx.ArrP, Fx.IntP);
  EXPECT_TRUE(requiresExtendedOperand(*Fx.F, Fx.last(), 1, Fx.T)); // Index.

  // Char registers are sub-register too: a full-register use needs their
  // canonical zero extension.
  B.i2d(Fx.CharP);
  EXPECT_TRUE(requiresExtendedOperand(*Fx.F, Fx.last(), 0, Fx.T));
}

TEST(FactsTest, NonRequiringUses) {
  FactsFixture Fx;
  auto &B = Fx.B;

  B.add32(Fx.IntP, Fx.IntQ);
  EXPECT_FALSE(requiresExtendedOperand(*Fx.F, Fx.last(), 0, Fx.T));
  EXPECT_TRUE(passThroughOperand(*Fx.F, Fx.last(), 0, 32));
  EXPECT_FALSE(upperBitsIrrelevant(*Fx.F, Fx.last(), 0, 32));

  B.cmp32(CmpPred::SLT, Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(upperBitsIrrelevant(*Fx.F, Fx.last(), 0, 32));
  EXPECT_FALSE(requiresExtendedOperand(*Fx.F, Fx.last(), 0, Fx.T));

  B.arrayStore(Type::I32, Fx.ArrP, Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(upperBitsIrrelevant(*Fx.F, Fx.last(), 2, 32)); // Value.
  EXPECT_FALSE(upperBitsIrrelevant(*Fx.F, Fx.last(), 1, 32)); // Index.

  // I64-element store needs the full value register.
  Reg LongVal = Fx.LongP;
  B.arrayStore(Type::I64, Fx.ArrP, Fx.IntP, LongVal);
  EXPECT_FALSE(upperBitsIrrelevant(*Fx.F, Fx.last(), 2, 32));
}

TEST(FactsTest, WidthSensitivity) {
  FactsFixture Fx;
  auto &B = Fx.B;

  // A W32 add is Case 1/2 only for 32-bit extensions: an 8-bit extension
  // fixes DATA bits of the add.
  B.add32(Fx.ByteP, Fx.IntQ);
  EXPECT_FALSE(upperBitsIrrelevant(*Fx.F, Fx.last(), 0, 8));
  EXPECT_FALSE(passThroughOperand(*Fx.F, Fx.last(), 0, 8));
  EXPECT_TRUE(requiresExtendedOperand(*Fx.F, Fx.last(), 0, Fx.T));

  // Narrow stores only read the stored width.
  B.arrayStore(Type::I8, Fx.ArrP, Fx.IntP, Fx.ByteP);
  EXPECT_TRUE(upperBitsIrrelevant(*Fx.F, Fx.last(), 2, 8));
  B.arrayStore(Type::I16, Fx.ArrP, Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(upperBitsIrrelevant(*Fx.F, Fx.last(), 2, 16));
  EXPECT_FALSE(upperBitsIrrelevant(*Fx.F, Fx.last(), 2, 8));
}

TEST(FactsTest, ShiftOperands) {
  FactsFixture Fx;
  auto &B = Fx.B;

  B.shl32(Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(upperBitsIrrelevant(*Fx.F, Fx.last(), 1, 32)); // Count.
  EXPECT_TRUE(passThroughOperand(*Fx.F, Fx.last(), 0, 32));  // Value.

  B.shr32(Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(upperBitsIrrelevant(*Fx.F, Fx.last(), 0, 32)); // Extract.
  B.sar32(Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(upperBitsIrrelevant(*Fx.F, Fx.last(), 0, 32));
}

TEST(FactsTest, ArrayAnalyzableThrough) {
  FactsFixture Fx;
  auto &B = Fx.B;
  B.add32(Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(arrayAnalyzableThrough(Fx.last()));
  B.sub32(Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(arrayAnalyzableThrough(Fx.last()));
  B.copy(Fx.IntP);
  EXPECT_TRUE(arrayAnalyzableThrough(Fx.last()));
  B.mul32(Fx.IntP, Fx.IntQ);
  EXPECT_FALSE(arrayAnalyzableThrough(Fx.last()));
  B.xor32(Fx.IntP, Fx.IntQ);
  EXPECT_FALSE(arrayAnalyzableThrough(Fx.last()));
}

TEST(FactsTest, StructurallyExtendedDefs) {
  FactsFixture Fx;
  auto &B = Fx.B;

  B.sext(8, Fx.IntP);
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 8));
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 32));

  B.sext(32, Fx.IntP);
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 32));
  EXPECT_FALSE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 8));

  B.constI32(100);
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 8));
  B.constI32(200); // Needs 9 signed bits.
  EXPECT_FALSE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 8));
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 16));

  B.cmp32(CmpPred::EQ, Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 8));

  B.sar32(Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 32));

  B.add32(Fx.IntP, Fx.IntQ);
  EXPECT_FALSE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 32));
}

TEST(FactsTest, LoadExtensionDependsOnTarget) {
  FactsFixture Fx;
  auto &B = Fx.B;
  const TargetInfo &PPC = TargetInfo::ppc64();

  B.arrayLoad(Type::I32, Fx.ArrP, Fx.IntP);
  EXPECT_FALSE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 32));
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), PPC, ExtKind::Sign, 32));

  B.arrayLoad(Type::I16, Fx.ArrP, Fx.IntP);
  EXPECT_FALSE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 16));
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), PPC, ExtKind::Sign, 16));
  // Even a zero-extending short load is 32-extended ([0, 65535]).
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 32));

  B.arrayLoad(Type::I8, Fx.ArrP, Fx.IntP);
  // Byte loads zero-extend on both targets: [0,255] is 16-extended but
  // not 8-extended.
  EXPECT_FALSE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 8));
  EXPECT_TRUE(defKnownExtendedStructural(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 16));
  EXPECT_FALSE(defKnownExtendedStructural(*Fx.F, Fx.last(), PPC, ExtKind::Sign, 8));
}

TEST(FactsTest, PropagationIndices) {
  FactsFixture Fx;
  auto &B = Fx.B;

  B.copy(Fx.IntP);
  EXPECT_EQ(defPropagatesExtension(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 32),
            std::vector<unsigned>{0});

  B.and32(Fx.IntP, Fx.IntQ);
  EXPECT_EQ(defPropagatesExtension(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 32),
            (std::vector<unsigned>{0, 1}));
  EXPECT_TRUE(defPropagatesExtension(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 8).empty());

  B.add32(Fx.IntP, Fx.IntQ);
  EXPECT_TRUE(defPropagatesExtension(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 32).empty());

  // A wider extension preserves an already-narrower-extended value.
  B.sext(32, Fx.IntP);
  EXPECT_EQ(defPropagatesExtension(*Fx.F, Fx.last(), Fx.T, ExtKind::Sign, 8),
            std::vector<unsigned>{0});
}

} // namespace
