//===- tests/perf_smoke_test.cpp - Compile-time scalability smoke ---------------===//
//
// Guards the compile-time overhaul's two load-bearing properties on
// inputs big enough to notice (random ~5000-instruction functions):
//
//  - the shared AnalysisCache builds each analysis at most once per
//    invalidation epoch: repeat queries hit, unrelated mutations don't
//    cascade (an instruction insert leaves the block tier valid), and a
//    full pipeline run never builds an analysis more often than the
//    function's epoch counters could justify;
//  - the full pipeline over such a function stays verifier-clean, so the
//    scalability machinery (dense numbering, arena storage, epoch
//    invalidation) is exercised well past the sizes the golden tests
//    cover.
//
//===-----------------------------------------------------------------------------===//

#include "analysis/AnalysisCache.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "pm/InstrumentedPipeline.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace sxe;

namespace {

/// Builds one random function of roughly \p TargetInsts instructions: a
/// chain of diamonds (branch, two arithmetic arms, join) whose arms mix
/// 32-bit arithmetic, narrowing truncate-extend pairs, and array traffic
/// — enough extension pressure to keep every pipeline phase busy. The
/// join blocks jump forward, so the function also has blocks SimplifyCFG
/// wants to merge.
std::unique_ptr<Module> buildLargeModule(uint64_t Seed,
                                         unsigned TargetInsts) {
  auto M = std::make_unique<Module>("perf_smoke");
  Function *F = M->createFunction("big", Type::I32);
  Reg N = F->addParam(Type::I32, "n");
  Reg A = F->addParam(Type::ArrayRef, "a");

  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(F, Entry);
  RNG R(Seed);

  Reg Acc = F->newReg(Type::I32, "acc");
  B.copyTo(Acc, N);
  Reg Mask = B.constI32(63);
  Reg One = B.constI32(1);

  unsigned Emitted = 0;
  while (Emitted < TargetInsts) {
    // One diamond: cond, then/else arms of random arithmetic, join.
    BasicBlock *Then = F->createBlock("t");
    BasicBlock *Else = F->createBlock("e");
    BasicBlock *Join = F->createBlock("j");

    Reg C = B.cmp32(CmpPred::SGT, Acc, One);
    B.br(C, Then, Else);

    for (BasicBlock *Arm : {Then, Else}) {
      B.setBlock(Arm);
      unsigned ArmLen = 8 + static_cast<unsigned>(R.nextBelow(16));
      for (unsigned I = 0; I < ArmLen; ++I) {
        switch (R.nextBelow(5)) {
        case 0:
          B.binopTo(Acc, Opcode::Add, Width::W32, Acc, One);
          break;
        case 1:
          B.binopTo(Acc, Opcode::Xor, Width::W32, Acc, Mask);
          break;
        case 2: // Narrow + re-extend: elimination fodder.
          B.binopTo(Acc, Opcode::And, Width::W32, Acc, Mask);
          B.sextTo(Acc, 8, Acc);
          break;
        case 3: { // Masked array traffic keeps the theorems engaged.
          Reg Idx = B.and32(Acc, Mask);
          Reg V = B.arrayLoad(Type::I32, A, Idx);
          B.binopTo(Acc, Opcode::Add, Width::W32, Acc, V);
          break;
        }
        default:
          B.binopTo(Acc, Opcode::Sub, Width::W32, Acc, One);
          break;
        }
      }
      Emitted += ArmLen;
      B.jmp(Join);
    }
    B.setBlock(Join);
  }
  B.ret(Acc);
  return M;
}

TEST(PerfSmokeTest, CacheBuildsEachAnalysisOncePerEpoch) {
  auto M = buildLargeModule(/*Seed=*/1, /*TargetInsts=*/5000);
  Function &F = *M->functions().front();
  ASSERT_GE(F.numberInstructions().NumInsts, 5000u);

  AnalysisCache Cache(F, &TargetInfo::ia64());

  // Repeat queries of a clean function: exactly one build each.
  for (int Round = 0; Round < 3; ++Round) {
    Cache.cfg();
    Cache.dominators();
    Cache.loops();
    Cache.frequencies();
    Cache.chains();
    Cache.ranges();
  }
  EXPECT_EQ(Cache.stats().CfgBuilds, 1u);
  EXPECT_EQ(Cache.stats().DomBuilds, 1u);
  EXPECT_EQ(Cache.stats().LoopBuilds, 1u);
  EXPECT_EQ(Cache.stats().FreqBuilds, 1u);
  EXPECT_EQ(Cache.stats().ChainBuilds, 1u);
  EXPECT_EQ(Cache.stats().RangeBuilds, 1u);
  EXPECT_GE(Cache.stats().CfgHits, 2u);

  // An instruction-level mutation invalidates only the instruction tier.
  BasicBlock *Entry = F.entryBlock();
  Reg Tmp = F.newReg(Type::I32, "tmp");
  Instruction *Nop = F.newInstruction(Opcode::Copy);
  Nop->setDest(Tmp);
  Nop->addOperand(Tmp);
  Entry->insertBefore(&*Entry->begin(), Nop);

  Cache.cfg();
  Cache.chains();
  Cache.ranges();
  Cache.chains();
  EXPECT_EQ(Cache.stats().CfgBuilds, 1u) << "block tier must survive";
  EXPECT_EQ(Cache.stats().ChainBuilds, 2u);
  EXPECT_EQ(Cache.stats().RangeBuilds, 2u);

  // A block-level mutation invalidates both tiers — once.
  BasicBlock *Orphan = F.createBlock("orphan");
  (void)Orphan;
  for (int Round = 0; Round < 2; ++Round) {
    Cache.cfg();
    Cache.loops();
    Cache.chains();
  }
  EXPECT_EQ(Cache.stats().CfgBuilds, 2u);
  EXPECT_EQ(Cache.stats().LoopBuilds, 2u);
  EXPECT_EQ(Cache.stats().ChainBuilds, 3u);
}

TEST(PerfSmokeTest, PipelineBuildCountsBoundedByEpochs) {
  auto M = buildLargeModule(/*Seed=*/2, /*TargetInsts=*/5000);
  Function &F = *M->functions().front();

  PipelineConfig Config;
  Config.EnableArrayTheorems = true;

  PassManager PM;
  buildPipelinePasses(PM, Config);
  PassStats Stats;
  PassContext Ctx(Config, Stats);
  ASSERT_TRUE(PM.run(*M, Ctx));

  std::vector<std::string> Problems;
  EXPECT_TRUE(verifyModule(*M, Problems))
      << "pipeline broke a 5k-instruction module: "
      << (Problems.empty() ? "" : Problems.front());

  // Each analysis can rebuild at most once per epoch its tier keys on,
  // whatever the pass mix does. The epoch counters only ever advance, so
  // their final values bound the number of invalidation points.
  AnalysisCacheStats CS = Ctx.cacheStats();
  EXPECT_GE(CS.CfgBuilds, 1u);
  EXPECT_GE(CS.ChainBuilds, 1u);
  EXPECT_LE(CS.CfgBuilds, F.cfgEpoch());
  EXPECT_LE(CS.DomBuilds, F.cfgEpoch());
  EXPECT_LE(CS.LoopBuilds, F.cfgEpoch());
  EXPECT_LE(CS.FreqBuilds, F.cfgEpoch());
  EXPECT_LE(CS.ChainBuilds, F.irEpoch());
  EXPECT_LE(CS.RangeBuilds, F.irEpoch());
  // The sharing must actually pay: consumers outnumber constructions.
  EXPECT_GT(CS.CfgHits, CS.CfgBuilds);
}

} // namespace
