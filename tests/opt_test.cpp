//===- tests/opt_test.cpp - General optimization tests ---------------------------===//

#include "interp/Interpreter.h"
#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "opt/DeadCodeElim.h"
#include "opt/ExtensionPRE.h"
#include "opt/GeneralOpts.h"
#include "opt/LocalOpts.h"
#include "tests/TestHelpers.h"

#include <gtest/gtest.h>

using namespace sxe;
using namespace sxe::test;

namespace {

unsigned countOpcode(const Function &F, Opcode Op) {
  unsigned Count = 0;
  for (const auto &BB : F.blocks())
    for (const Instruction &I : *BB)
      Count += I.opcode() == Op ? 1 : 0;
  return Count;
}

TEST(LocalOptsTest, FoldsExtensionOfConstant) {
  // "when a constant is propagated as the source operand of a sign
  // extension, the sign extension will be changed to a copy instruction
  // by constant folding" — ours folds it into a constant outright.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C = B.constI32(-7);
  Reg X = F->newReg(Type::I32, "x");
  B.copyTo(X, C);
  B.sextTo(X, 32, X);
  B.ret(X);

  runLocalOpts(*F);
  EXPECT_EQ(countSext(*F), 0u);
  ASSERT_TRUE(moduleVerifies(*M));
}

TEST(LocalOptsTest, RefusesNonCanonicalFold) {
  // 0x7fffffff + 1 at machine level produces +2^31, which is NOT a valid
  // i32 register image: the fold must not happen.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(INT32_MAX);
  Reg One = B.constI32(1);
  Reg Sum = B.add32(A, One, "sum");
  B.ret(Sum);

  runLocalOpts(*F);
  EXPECT_EQ(countOpcode(*F, Opcode::Add), 1u); // Still an add.
}

TEST(LocalOptsTest, FoldsCanonicalArithmetic) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg A = B.constI32(6);
  Reg Bv = B.constI32(7);
  Reg Prod = B.mul32(A, Bv, "prod");
  B.ret(Prod);

  runLocalOpts(*F);
  EXPECT_EQ(countOpcode(*F, Opcode::Mul), 0u);
  Interpreter Interp(*M, InterpOptions{});
  // Constant-folded function still computes 42 (run through a main-like
  // direct call).
  EXPECT_EQ(Interp.run("f").ReturnValue, 42u);
}

TEST(LocalOptsTest, PropagatesCopiesWithinBlock) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.copy(P, "x");
  Reg Y = B.add32(X, X, "y");
  B.ret(Y);

  runLocalOpts(*F);
  // The add now reads the original parameter.
  for (const Instruction &I : *F->entryBlock())
    if (I.opcode() == Opcode::Add) {
      EXPECT_EQ(I.operand(0), P);
      EXPECT_EQ(I.operand(1), P);
    }
}

TEST(DeadCodeElimTest, RemovesDeadPureDefs) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Dead = B.add32(P, P, "dead");
  Reg DeadToo = B.xor32(Dead, P, "deadToo");
  B.ret(P);
  (void)DeadToo;

  unsigned Removed = runDeadCodeElim(*F);
  EXPECT_EQ(Removed, 2u);
  EXPECT_EQ(F->countInstructions(), 1u);
}

TEST(DeadCodeElimTest, KeepsTrappingInstructions) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  Reg Q = F->addParam(Type::I32, "q");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Dead = B.div32(P, Q, "dead"); // May trap: must stay.
  B.ret(P);
  (void)Dead;

  runDeadCodeElim(*F);
  EXPECT_EQ(countOpcode(*F, Opcode::Div), 1u);
}

TEST(DeadCodeElimTest, KeepsLiveLoopValues) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg N = F->addParam(Type::I32, "n");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Zero = B.constI32(0);
  Reg I = F->newReg(Type::I32, "i");
  B.copyTo(I, Zero);
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Head);
  B.setBlock(Head);
  Reg C = B.cmp32(CmpPred::SLT, I, N);
  B.br(C, Body, Exit);
  B.setBlock(Body);
  Reg One = B.constI32(1);
  B.binopTo(I, Opcode::Add, Width::W32, I, One);
  B.jmp(Head);
  B.setBlock(Exit);
  B.ret(I);

  size_t Before = F->countInstructions();
  runDeadCodeElim(*F);
  EXPECT_EQ(F->countInstructions(), Before);
}

TEST(ExtensionPRETest, RemovesBackToBackExtensions) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.add32(P, P, "x");
  B.sextTo(X, 32, X);
  B.sextTo(X, 32, X); // Redundant on every path.
  B.ret(X);

  unsigned Changed = runExtensionPRE(*F, TargetInfo::ia64());
  EXPECT_GE(Changed, 1u);
  EXPECT_EQ(countSext(*F), 1u);
}

TEST(ExtensionPRETest, RemovesExtensionAfterKnownExtendedDef) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg C = B.cmp32(CmpPred::SLT, P, P, "c"); // 0/1: canonical.
  B.sextTo(C, 32, C);
  B.ret(C);

  runExtensionPRE(*F, TargetInfo::ia64());
  EXPECT_EQ(countSext(*F), 0u);
}

TEST(ExtensionPRETest, HoistsLoopInvariantExtension) {
  // x is defined before the loop; its extension inside the loop is the
  // only in-loop definition and moves to the preheader.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("f", Type::I32);
  Reg P = F->addParam(Type::I32, "p");
  Reg N = F->addParam(Type::I32, "n");
  IRBuilder B(F);
  B.startBlock("entry");
  Reg X = B.add32(P, P, "x");
  Reg Zero = B.constI32(0);
  Reg I = F->newReg(Type::I32, "i");
  B.copyTo(I, Zero);
  BasicBlock *Pre = F->createBlock("pre");
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Pre);
  B.setBlock(Pre);
  B.jmp(Head);
  B.setBlock(Head);
  Reg C = B.cmp32(CmpPred::SLT, I, N);
  B.br(C, Body, Exit);
  B.setBlock(Body);
  B.sextTo(X, 32, X); // Loop-invariant extension.
  Reg One = B.constI32(1);
  B.binopTo(I, Opcode::Add, Width::W32, I, One);
  B.jmp(Head);
  B.setBlock(Exit);
  B.ret(X);

  runExtensionPRE(*F, TargetInfo::ia64());
  EXPECT_EQ(countSext(*Body), 0u);
  EXPECT_EQ(countSext(*Pre), 1u);
}

TEST(GeneralOptsTest, PreservesSemantics) {
  // Build a small program, run the step-2 bundle, and compare results.
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", Type::I64);
  IRBuilder B(F);
  B.startBlock("entry");
  Reg Len = B.constI32(32);
  Reg Arr = B.newArray(Type::I32, Len, "arr");
  Reg Zero = B.constI32(0);
  Reg I = F->newReg(Type::I32, "i");
  B.copyTo(I, Zero);
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.jmp(Head);
  B.setBlock(Head);
  Reg C = B.cmp32(CmpPred::SLT, I, Len);
  B.br(C, Body, Exit);
  B.setBlock(Body);
  Reg Seven = B.constI32(7);
  Reg V = B.mul32(I, Seven, "v");
  B.arrayStore(Type::I32, Arr, I, V);
  Reg One = B.constI32(1);
  B.binopTo(I, Opcode::Add, Width::W32, I, One);
  B.jmp(Head);
  B.setBlock(Exit);
  Reg Last = B.constI32(31);
  Reg Final = B.arrayLoad(Type::I32, Arr, Last, "final");
  Reg Wide = F->newReg(Type::I64, "wide");
  B.copyTo(Wide, Final);
  B.ret(Wide);

  auto Reference = cloneModule(*M);
  runGeneralOpts(*M->findFunction("main"), TargetInfo::ia64());
  ASSERT_TRUE(moduleVerifies(*M));

  InterpOptions Java;
  Java.Semantics = ExecSemantics::Java;
  EXPECT_EQ(Interpreter(*M, Java).run("main").ReturnValue,
            Interpreter(*Reference, Java).run("main").ReturnValue);
}

} // namespace
