//===- tools/sxe-irfuzz.cpp - Parser fuzz driver ----------------------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
// Feeds the .sxir parser adversarial byte-level input (random bytes,
// printable noise, token soup, corrupted valid modules) and asserts it
// never crashes. The process exiting normally is the assertion; the tool
// also reports how many inputs parsed, were rejected, and verified.
//
//   sxe-irfuzz --inputs=1000000 --seed=1
//
//===----------------------------------------------------------------------===//

#include "fuzz/ParserFuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace sxe;

namespace {

void printUsage() {
  std::fprintf(stderr,
               "usage: sxe-irfuzz [options]\n"
               "  --inputs=N     number of fuzz inputs (default 100000)\n"
               "  --seed=N       RNG seed (default 1)\n"
               "  --max-bytes=N  maximum input length (default 2048)\n"
               "  --no-mutate    disable corrupted-valid-module inputs\n"
               "  --progress=N   print a progress line every N inputs\n");
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Inputs = 100000;
  uint64_t Seed = 1;
  uint64_t ProgressEvery = 0;
  ParserFuzzOptions Options;

  for (int Index = 1; Index < Argc; ++Index) {
    const char *Arg = Argv[Index];
    if (std::strncmp(Arg, "--inputs=", 9) == 0) {
      Inputs = std::strtoull(Arg + 9, nullptr, 0);
    } else if (std::strncmp(Arg, "--seed=", 7) == 0) {
      Seed = std::strtoull(Arg + 7, nullptr, 0);
    } else if (std::strncmp(Arg, "--max-bytes=", 12) == 0) {
      Options.MaxBytes = std::strtoull(Arg + 12, nullptr, 0);
      if (Options.MaxBytes == 0)
        Options.MaxBytes = 1;
    } else if (std::strcmp(Arg, "--no-mutate") == 0) {
      Options.MutateValid = false;
    } else if (std::strncmp(Arg, "--progress=", 11) == 0) {
      ProgressEvery = std::strtoull(Arg + 11, nullptr, 0);
    } else if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "sxe-irfuzz: unknown argument '%s'\n", Arg);
      printUsage();
      return 2;
    }
  }

  // Run in batches so long campaigns show progress without threading a
  // callback through the library.
  uint64_t Batch = ProgressEvery ? ProgressEvery : Inputs;
  ParserFuzzStats Total;
  uint64_t Done = 0;
  uint64_t BatchSeed = Seed;
  while (Done < Inputs) {
    uint64_t Count = Inputs - Done < Batch ? Inputs - Done : Batch;
    ParserFuzzStats Stats;
    runParserFuzz(BatchSeed, Count, Options, &Stats);
    Total.Inputs += Stats.Inputs;
    Total.Accepted += Stats.Accepted;
    Total.Rejected += Stats.Rejected;
    Total.Verified += Stats.Verified;
    Done += Count;
    ++BatchSeed;
    if (ProgressEvery && Done < Inputs)
      std::fprintf(stderr, "... %llu/%llu inputs\n",
                   static_cast<unsigned long long>(Done),
                   static_cast<unsigned long long>(Inputs));
  }

  std::fprintf(stderr,
               "sxe-irfuzz: %llu inputs, %llu accepted (%llu verified), "
               "%llu rejected, 0 crashes\n",
               static_cast<unsigned long long>(Total.Inputs),
               static_cast<unsigned long long>(Total.Accepted),
               static_cast<unsigned long long>(Total.Verified),
               static_cast<unsigned long long>(Total.Rejected));
  return 0;
}
