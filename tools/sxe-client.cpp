//===- tools/sxe-client.cpp - Compile-serving client binary --------------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
// Drives a running sxe-served over its unix socket:
//
//   sxe-client --socket=PATH FILE.sxir...         compile files
//   sxe-client --socket=PATH --batch=DIR          compile every .sxir in DIR
//   sxe-client --socket=PATH --ping [--wait-ms=N] liveness probe (retrying)
//   sxe-client --socket=PATH --metrics[=FILE]     dump Prometheus metrics
//   sxe-client --socket=PATH --dump[=FILE]        fetch the flight recorder
//   sxe-client --socket=PATH --shutdown           ask for a graceful drain
//
// Compile options: --target=NAME --variant=NAME --deadline-ms=N
// --remarks --out=DIR (write optimized IR next to the reply)
// --require-persistent-hit (exit 1 unless every compile was served from
// the on-disk tier — the CI warm-restart assertion)
// --json (one machine-readable JSON line per request: file, status,
// tier, trace/request ids, queue-wait and wall latency)
// --trace=FILE (write the client-side sxe.trace.v1 spans, one "request"
// span per compile, joinable with the daemon's trace by trace id).
//
// Exit status: 0 when every request succeeded, 1 on any typed compile
// error or unmet --require-persistent-hit, 2 on usage/transport errors.
//
//===----------------------------------------------------------------------------===//

#include "serve/Client.h"

#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace sxe;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: sxe-client --socket=PATH [FILE.sxir... | --batch=DIR]\n"
      "                  [--target=NAME] [--variant=NAME] [--deadline-ms=N]\n"
      "                  [--remarks] [--out=DIR] [--require-persistent-hit]\n"
      "                  [--json] [--trace=FILE]\n"
      "       sxe-client --socket=PATH --ping [--wait-ms=N]\n"
      "       sxe-client --socket=PATH --metrics[=FILE]\n"
      "       sxe-client --socket=PATH --dump[=FILE]\n"
      "       sxe-client --socket=PATH --shutdown\n");
}

bool readFileText(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath;
  std::vector<std::string> Files;
  std::string BatchDir;
  std::string Target = "ia64";
  std::string VariantName = "all";
  uint64_t DeadlineMillis = 0;
  unsigned WaitMillis = 0;
  bool Ping = false;
  bool Metrics = false;
  std::string MetricsFile;
  bool Shutdown = false;
  bool WantRemarks = false;
  std::string OutDir;
  bool RequirePersistentHit = false;
  bool JsonOutput = false;
  std::string TraceFile;
  bool Dump = false;
  std::string DumpFile;

  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    if (Arg.rfind("--socket=", 0) == 0)
      SocketPath = Arg.substr(9);
    else if (Arg.rfind("--batch=", 0) == 0)
      BatchDir = Arg.substr(8);
    else if (Arg.rfind("--target=", 0) == 0)
      Target = Arg.substr(9);
    else if (Arg.rfind("--variant=", 0) == 0)
      VariantName = Arg.substr(10);
    else if (Arg.rfind("--deadline-ms=", 0) == 0)
      DeadlineMillis = std::strtoull(Arg.c_str() + 14, nullptr, 10);
    else if (Arg.rfind("--wait-ms=", 0) == 0)
      WaitMillis = static_cast<unsigned>(std::atoi(Arg.c_str() + 10));
    else if (Arg == "--ping")
      Ping = true;
    else if (Arg == "--metrics")
      Metrics = true;
    else if (Arg.rfind("--metrics=", 0) == 0) {
      Metrics = true;
      MetricsFile = Arg.substr(10);
    } else if (Arg == "--shutdown")
      Shutdown = true;
    else if (Arg == "--remarks")
      WantRemarks = true;
    else if (Arg.rfind("--out=", 0) == 0)
      OutDir = Arg.substr(6);
    else if (Arg == "--require-persistent-hit")
      RequirePersistentHit = true;
    else if (Arg == "--json")
      JsonOutput = true;
    else if (Arg.rfind("--trace=", 0) == 0)
      TraceFile = Arg.substr(8);
    else if (Arg == "--dump")
      Dump = true;
    else if (Arg.rfind("--dump=", 0) == 0) {
      Dump = true;
      DumpFile = Arg.substr(7);
    }
    else if (!Arg.empty() && Arg[0] != '-')
      Files.push_back(Arg);
    else {
      std::fprintf(stderr, "sxe-client: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (SocketPath.empty()) {
    usage();
    return 2;
  }

  ServeClient Client;
  TraceCollector ClientTrace;
  std::string Error;
  if (!Client.connectTo(SocketPath, Error, WaitMillis)) {
    std::fprintf(stderr, "sxe-client: %s\n", Error.c_str());
    return 2;
  }
  if (!TraceFile.empty()) {
    ClientTrace.nameThread("sxe-client");
    Client.setTrace(&ClientTrace);
  }

  if (Ping) {
    if (!Client.ping(Error)) {
      std::fprintf(stderr, "sxe-client: ping failed: %s\n", Error.c_str());
      return 2;
    }
    std::printf("pong\n");
  }

  if (!BatchDir.empty()) {
    std::error_code EC;
    for (const auto &Entry :
         std::filesystem::directory_iterator(BatchDir, EC))
      if (Entry.is_regular_file() && Entry.path().extension() == ".sxir")
        Files.push_back(Entry.path().string());
    if (EC) {
      std::fprintf(stderr, "sxe-client: cannot list %s: %s\n",
                   BatchDir.c_str(), EC.message().c_str());
      return 2;
    }
    std::sort(Files.begin(), Files.end());
  }

  int Status = 0;
  for (const std::string &File : Files) {
    ServeRequest Request;
    Request.Name = std::filesystem::path(File).filename().string();
    if (!readFileText(File, Request.Source)) {
      std::fprintf(stderr, "sxe-client: cannot read %s\n", File.c_str());
      return 2;
    }
    Request.Target = Target;
    Request.Variant = VariantName;
    Request.DeadlineMillis = DeadlineMillis;
    Request.CollectRemarks = WantRemarks;
    Request.WantIR = !OutDir.empty();
    Request.Hotness = static_cast<double>(Request.Source.size());

    ServeReply Reply;
    if (!Client.compile(Request, Reply, Error)) {
      std::fprintf(stderr, "sxe-client: %s: transport error: %s\n",
                   File.c_str(), Error.c_str());
      return 2;
    }
    if (JsonOutput) {
      // One machine-readable record per request, errors included, so a
      // harness can correlate each result with the daemon's artifacts by
      // trace id without scraping human-formatted text.
      std::string Line = "{\"file\": " + JsonWriter::quote(Request.Name) +
                         ", \"status\": " +
                         JsonWriter::quote(Reply.Ok ? "ok"
                                                    : serveErrorKindName(
                                                          Reply.ErrorKind));
      if (Reply.Ok)
        Line += ", \"tier\": " + JsonWriter::quote(serveTierName(Reply.Tier));
      else
        Line += ", \"error\": " + JsonWriter::quote(Reply.Error);
      if (Reply.TraceId)
        Line += ", \"trace_id\": \"" + traceIdHex(Reply.TraceId) + "\"";
      if (Reply.RequestId)
        Line += ", \"request_id\": " + std::to_string(Reply.RequestId);
      char Latency[96];
      std::snprintf(Latency, sizeof(Latency),
                    ", \"queue_wait_ms\": %.3f, \"wall_ms\": %.3f}",
                    Reply.QueueWaitNanos / 1e6, Reply.WallNanos / 1e6);
      Line += Latency;
      std::printf("%s\n", Line.c_str());
    }
    if (!Reply.Ok) {
      if (!JsonOutput)
        std::fprintf(stderr, "sxe-client: %s: %s error: %s\n", File.c_str(),
                     serveErrorKindName(Reply.ErrorKind),
                     Reply.Error.c_str());
      Status = 1;
      continue;
    }
    if (!JsonOutput)
      std::printf("%-24s %-10s ir_hash=%016llx queue_wait=%.3fms "
                  "wall=%.3fms trace=%s\n",
                  Request.Name.c_str(), serveTierName(Reply.Tier),
                  static_cast<unsigned long long>(Reply.InputIRHash),
                  Reply.QueueWaitNanos / 1e6, Reply.WallNanos / 1e6,
                  Reply.TraceId ? traceIdHex(Reply.TraceId).c_str() : "-");
    if (RequirePersistentHit && Reply.Tier != ServeTier::Persistent) {
      std::fprintf(stderr,
                   "sxe-client: %s: served from '%s', expected the "
                   "persistent tier\n",
                   File.c_str(), serveTierName(Reply.Tier));
      Status = 1;
    }
    if (WantRemarks && !Reply.RemarksJsonl.empty())
      std::fputs(Reply.RemarksJsonl.c_str(), stdout);
    if (!OutDir.empty()) {
      std::filesystem::create_directories(OutDir);
      std::string OutPath =
          (std::filesystem::path(OutDir) / Request.Name).string();
      if (!writeTextFile(OutPath, Reply.IRText)) {
        std::fprintf(stderr, "sxe-client: cannot write %s\n",
                     OutPath.c_str());
        return 2;
      }
    }
  }

  if (Metrics) {
    std::string Prom;
    if (!Client.fetchMetrics(Prom, Error)) {
      std::fprintf(stderr, "sxe-client: metrics failed: %s\n", Error.c_str());
      return 2;
    }
    if (MetricsFile.empty() || MetricsFile == "-") {
      std::fputs(Prom.c_str(), stdout);
    } else if (!writeTextFile(MetricsFile, Prom)) {
      std::fprintf(stderr, "sxe-client: cannot write %s\n",
                   MetricsFile.c_str());
      return 2;
    }
  }

  if (Dump) {
    std::string DumpJsonl;
    if (!Client.fetchFlightDump(DumpJsonl, Error)) {
      std::fprintf(stderr, "sxe-client: dump failed: %s\n", Error.c_str());
      return 2;
    }
    if (DumpFile.empty() || DumpFile == "-") {
      std::fputs(DumpJsonl.c_str(), stdout);
    } else if (!writeTextFile(DumpFile, DumpJsonl)) {
      std::fprintf(stderr, "sxe-client: cannot write %s\n", DumpFile.c_str());
      return 2;
    }
  }

  if (!TraceFile.empty() && !writeTextFile(TraceFile, ClientTrace.toJson())) {
    std::fprintf(stderr, "sxe-client: cannot write %s\n", TraceFile.c_str());
    return 2;
  }

  if (Shutdown) {
    if (!Client.requestShutdown(Error)) {
      std::fprintf(stderr, "sxe-client: shutdown failed: %s\n",
                   Error.c_str());
      return 2;
    }
    std::printf("shutdown acknowledged\n");
  }

  return Status;
}
