//===- tools/sxe-difftest.cpp - Differential pipeline tester ----------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
// Generates seeded random modules and checks every pipeline variant on
// every target against the Java-semantics interpreter oracle. Any failure
// prints a reproduction line carrying the seed; with --reduce, a greedy
// reducer shrinks the failing module and writes minimized .sxir next to
// the report.
//
//   sxe-difftest --seeds=10000 --size=medium --reduce --out=failures
//   sxe-difftest --seed=4217 --size=large          # reproduce one seed
//
//===----------------------------------------------------------------------===//

#include "fuzz/DiffTest.h"
#include "fuzz/RandomModuleGenerator.h"
#include "fuzz/Reducer.h"
#include "ir/IRPrinter.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace sxe;

namespace {

struct ToolOptions {
  uint64_t Seeds = 200;
  uint64_t StartSeed = 1;
  bool SingleSeed = false;
  std::string Size = "medium";
  std::string Unsigned = "on";
  std::vector<const TargetInfo *> Targets;
  uint64_t MaxSteps = 1u << 22;
  bool Native = false;
  bool Reduce = false;
  std::string OutDir;
  bool KeepGoing = false;
  uint64_t ProgressEvery = 0;
  bool Quiet = false;
  bool InjectBug = false; // Hidden: prove the harness catches a miscompile.
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: sxe-difftest [options]\n"
      "  --seeds=N          number of consecutive seeds to test (default 200)\n"
      "  --start-seed=N     first seed (default 1)\n"
      "  --seed=N           test exactly one seed\n"
      "  --size=S           module shape: small | medium | large\n"
      "  --targets=A,B      subset of ia64,ppc64,generic64,x86_64 "
      "(default all)\n"
      "  --unsigned=MODE    unsigned/char constructs: off | on | heavy "
      "(default on)\n"
      "  --max-steps=N      interpreter step budget per run\n"
      "  --native           also run x86_64 pipelines through the native\n"
      "                     code generator and require interpreter parity\n"
      "  --reduce           minimize failing modules with the greedy reducer\n"
      "  --out=DIR          directory for minimized .sxir (default '.')\n"
      "  --keep-going       test all seeds even after a failure\n"
      "  --progress=N       print a progress line every N seeds\n"
      "  --quiet            only print failures and the final summary\n");
}

bool consumeFlag(const char *Arg, const char *Name, const char **Value) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) != 0)
    return false;
  if (Arg[Len] == '\0' && Value == nullptr)
    return true;
  if (Arg[Len] == '=' && Value != nullptr) {
    *Value = Arg + Len + 1;
    return true;
  }
  return false;
}

const TargetInfo *targetByName(const std::string &Name) {
  if (Name == "ia64")
    return &TargetInfo::ia64();
  if (Name == "ppc64")
    return &TargetInfo::ppc64();
  if (Name == "generic64")
    return &TargetInfo::generic64();
  if (Name == "x86_64")
    return &TargetInfo::x86_64();
  return nullptr;
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Options) {
  for (int Index = 1; Index < Argc; ++Index) {
    const char *Arg = Argv[Index];
    const char *Value = nullptr;
    if (consumeFlag(Arg, "--seeds", &Value)) {
      Options.Seeds = std::strtoull(Value, nullptr, 0);
    } else if (consumeFlag(Arg, "--start-seed", &Value)) {
      Options.StartSeed = std::strtoull(Value, nullptr, 0);
    } else if (consumeFlag(Arg, "--seed", &Value)) {
      Options.StartSeed = std::strtoull(Value, nullptr, 0);
      Options.Seeds = 1;
      Options.SingleSeed = true;
    } else if (consumeFlag(Arg, "--size", &Value)) {
      Options.Size = Value;
      if (Options.Size != "small" && Options.Size != "medium" &&
          Options.Size != "large") {
        std::fprintf(stderr, "sxe-difftest: unknown --size '%s'\n", Value);
        return false;
      }
    } else if (consumeFlag(Arg, "--unsigned", &Value)) {
      Options.Unsigned = Value;
      if (Options.Unsigned != "off" && Options.Unsigned != "on" &&
          Options.Unsigned != "heavy") {
        std::fprintf(stderr, "sxe-difftest: unknown --unsigned '%s'\n", Value);
        return false;
      }
    } else if (consumeFlag(Arg, "--targets", &Value)) {
      std::string List = Value;
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        std::string Name = List.substr(Pos, Comma - Pos);
        const TargetInfo *Target = targetByName(Name);
        if (!Target) {
          std::fprintf(stderr, "sxe-difftest: unknown target '%s'\n",
                       Name.c_str());
          return false;
        }
        Options.Targets.push_back(Target);
        Pos = Comma + 1;
      }
    } else if (consumeFlag(Arg, "--max-steps", &Value)) {
      Options.MaxSteps = std::strtoull(Value, nullptr, 0);
    } else if (consumeFlag(Arg, "--out", &Value)) {
      Options.OutDir = Value;
    } else if (consumeFlag(Arg, "--progress", &Value)) {
      Options.ProgressEvery = std::strtoull(Value, nullptr, 0);
    } else if (consumeFlag(Arg, "--native", nullptr)) {
      Options.Native = true;
    } else if (consumeFlag(Arg, "--reduce", nullptr)) {
      Options.Reduce = true;
    } else if (consumeFlag(Arg, "--keep-going", nullptr)) {
      Options.KeepGoing = true;
    } else if (consumeFlag(Arg, "--quiet", nullptr)) {
      Options.Quiet = true;
    } else if (consumeFlag(Arg, "--inject-bug", nullptr)) {
      Options.InjectBug = true;
    } else if (std::strcmp(Arg, "--help") == 0 ||
               std::strcmp(Arg, "-h") == 0) {
      printUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "sxe-difftest: unknown argument '%s'\n", Arg);
      printUsage();
      return false;
    }
  }
  return true;
}

GeneratorOptions shapeForSize(const std::string &Size,
                              const std::string &Unsigned) {
  GeneratorOptions Shape = Size == "small"   ? GeneratorOptions::small()
                           : Size == "large" ? GeneratorOptions::large()
                                             : GeneratorOptions::medium();
  if (Unsigned == "off") {
    Shape.EnableUnsignedOps = false;
    Shape.NumCharArrays = 0;
  } else if (Unsigned == "heavy") {
    Shape.NumCharArrays = Shape.NumCharArrays ? Shape.NumCharArrays * 2 : 2;
  }
  return Shape;
}

/// The hidden miscompile: delete the first retained sign extension in main
/// under the full algorithm on the first target. This is exactly the class
/// of bug the paper's correctness argument rules out, so the harness must
/// flag it (wild address or checksum mismatch) on some seed quickly.
void injectBug(Module &M, Variant V, const TargetInfo &Target) {
  if (V != Variant::All || Target.name() != "ia64")
    return;
  Function *Main = M.findFunction("main");
  if (!Main)
    return;
  for (const auto &BB : Main->blocks())
    for (Instruction &I : *BB)
      if (isSextOpcode(I.opcode())) {
        BB->erase(&I);
        return;
      }
}

std::string reproLine(uint64_t Seed, const ToolOptions &Options) {
  std::string Line = "sxe-difftest --seed=" + std::to_string(Seed) +
                     " --size=" + Options.Size;
  if (Options.Unsigned != "on")
    Line += " --unsigned=" + Options.Unsigned;
  if (Options.InjectBug)
    Line += " --inject-bug";
  return Line;
}

/// Reduces a failing module while the harness keeps reporting the same
/// failure status, then writes the minimized text to OutDir.
void reduceAndWrite(const Module &Failing, uint64_t Seed,
                    const DiffConfig &Config, const DiffFailure &Original,
                    const ToolOptions &Options) {
  DiffStatus Wanted = Original.Status;
  ReducerOptions RO;
  ReductionStats Stats;
  auto StillFails = [&](const Module &Candidate) {
    DiffResult R = runDifferentialTest(Candidate, Config);
    return !R.ok() && R.Failure->Status == Wanted;
  };
  std::unique_ptr<Module> Reduced = reduceModule(Failing, StillFails, RO, &Stats);

  std::string Dir = Options.OutDir.empty() ? "." : Options.OutDir;
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string Path = Dir + "/seed_" + std::to_string(Seed) + ".sxir";
  std::ofstream Out(Path);
  Out << "; " << reproLine(Seed, Options) << "\n";
  Out << "; " << Original.describe() << "\n";
  Out << printModule(*Reduced);
  Out.close();
  std::fprintf(stderr,
               "  reduced %zu -> %zu instructions (%u rounds, %u/%u "
               "candidates accepted), wrote %s\n",
               Stats.OriginalInstructions, Stats.ReducedInstructions,
               Stats.Rounds, Stats.CandidatesAccepted, Stats.CandidatesTried,
               Path.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Options;
  if (!parseArgs(Argc, Argv, Options))
    return 2;

  GeneratorOptions Shape = shapeForSize(Options.Size, Options.Unsigned);
  DiffConfig Config;
  Config.Targets = Options.Targets;
  Config.MaxSteps = Options.MaxSteps;
  Config.NativeEngine = Options.Native;
  if (Options.InjectBug)
    Config.PostPipelineMutator = injectBug;

  uint64_t Failures = 0, SkippedStepLimit = 0, PipelinesRun = 0,
           NativeRuns = 0;
  for (uint64_t Offset = 0; Offset < Options.Seeds; ++Offset) {
    uint64_t Seed = Options.StartSeed + Offset;
    RandomModuleGenerator Gen(Seed, Shape);
    std::unique_ptr<Module> M = Gen.generate();
    DiffResult Result = runDifferentialTest(*M, Config);
    PipelinesRun += Result.PipelinesRun;
    NativeRuns += Result.NativeRuns;

    if (!Result.ok() &&
        Result.Failure->Status == DiffStatus::OracleStepLimit) {
      // Not a correctness signal: the module is too slow for the budget.
      ++SkippedStepLimit;
      if (!Options.Quiet)
        std::fprintf(stderr, "seed %llu: skipped (%s)\n",
                     static_cast<unsigned long long>(Seed),
                     Result.Failure->describe().c_str());
      continue;
    }

    if (!Result.ok()) {
      ++Failures;
      std::fprintf(stderr, "FAIL seed %llu: %s\n",
                   static_cast<unsigned long long>(Seed),
                   Result.Failure->describe().c_str());
      std::fprintf(stderr, "  reproduce: %s\n",
                   reproLine(Seed, Options).c_str());
      if (Options.Reduce)
        reduceAndWrite(*M, Seed, Config, *Result.Failure, Options);
      if (!Options.KeepGoing)
        break;
    }

    if (Options.ProgressEvery && (Offset + 1) % Options.ProgressEvery == 0 &&
        !Options.Quiet)
      std::fprintf(stderr, "... %llu/%llu seeds, %llu pipeline runs\n",
                   static_cast<unsigned long long>(Offset + 1),
                   static_cast<unsigned long long>(Options.Seeds),
                   static_cast<unsigned long long>(PipelinesRun));
  }

  std::fprintf(stderr,
               "sxe-difftest: %llu seeds, %llu pipeline runs, %llu native "
               "runs, %llu step-limit skips, %llu failures\n",
               static_cast<unsigned long long>(Options.Seeds),
               static_cast<unsigned long long>(PipelinesRun),
               static_cast<unsigned long long>(NativeRuns),
               static_cast<unsigned long long>(SkippedStepLimit),
               static_cast<unsigned long long>(Failures));
  return Failures == 0 ? 0 : 1;
}
