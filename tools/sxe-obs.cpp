//===- tools/sxe-obs.cpp - Offline observability analyzer ----------------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
// Joins the serve path's observability artifacts into one per-request
// view:
//
//   sxe-obs --events=FILE [--trace=FILE]... [--metrics=FILE]
//           [--remarks=FILE] [--timelines=N] [--check=PCT]
//
//   --events    sxe.events.v1 JSONL written by `sxe-served --events-file=`
//   --trace     sxe.trace.v1 documents (repeatable: the daemon's plus any
//               `sxe-client --trace=` captures); spans join by trace_id
//   --metrics   sxe.metrics.v1 JSON; histogram exemplar trace ids are
//               resolved against the request table
//   --remarks   sxe.remarks.v1 JSONL; records join by module name
//
// Output: a request table (one line per request: ids, module, status,
// tier, stage latencies), up to --timelines full span timelines, a
// p50/p90/p99 stage breakdown (queue wait vs cache probes vs compile vs
// end-to-end serve), the tier mix, and the exemplar join table.
//
// --check=PCT is the CI gate: exit 1 unless at least PCT percent of the
// requests seen in the event log joined at least one trace span. Spans
// in different trace files have different collector epochs, so timeline
// offsets are per-source; the trace id is the cross-source join key.
//
// Exit status: 0 ok, 1 failed --check, 2 usage or unreadable/invalid
// input.
//
//===----------------------------------------------------------------------------===//

#include "support/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace sxe;

namespace {

struct SpanRec {
  std::string Name;
  std::string Category;
  std::string Source; ///< Trace-file alias ("trace0", ...).
  std::string Track;  ///< thread_name label, or "tid-N".
  double StartUs = 0;
  double DurUs = 0;
};

struct EventRec {
  uint64_t Nanos = 0;
  std::string Kind;
  std::string Detail; ///< Flattened extra fields ("tier=memory ...").
};

struct RequestRec {
  std::string TraceHex;
  uint64_t RequestId = 0;
  std::string Name;
  std::string Status; ///< "ok" or the typed error kind; "" = no reply seen.
  std::string Tier;
  std::vector<EventRec> Events;
  std::vector<SpanRec> Spans;
  size_t RemarkCount = 0;
};

struct StageSamples {
  std::vector<double> QueueWaitMs;
  std::vector<double> CacheProbeMs;
  std::vector<double> CompileMs;
  std::vector<double> ServeMs;
  std::vector<double> ClientMs;
};

void usage() {
  std::fprintf(stderr,
               "usage: sxe-obs --events=FILE [--trace=FILE]...\n"
               "               [--metrics=FILE] [--remarks=FILE]\n"
               "               [--timelines=N] [--check=PCT]\n");
}

bool readFileText(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

double percentile(std::vector<double> Sorted, double Pct) {
  if (Sorted.empty())
    return 0;
  std::sort(Sorted.begin(), Sorted.end());
  double Rank = Pct / 100.0 * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = Lo + 1 < Sorted.size() ? Lo + 1 : Lo;
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

uint64_t asUint(const JsonValue &Doc, const char *Name) {
  const JsonValue *Field = Doc.find(Name);
  if (!Field || !Field->isNumber())
    return 0;
  double Value = Field->numberValue();
  return Value > 0 ? static_cast<uint64_t>(Value) : 0;
}

/// Splits \p Text into lines (dropping empty ones).
std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    if (End > Pos)
      Lines.push_back(Text.substr(Pos, End - Pos));
    Pos = End + 1;
  }
  return Lines;
}

} // namespace

int main(int argc, char **argv) {
  std::string EventsFile;
  std::vector<std::string> TraceFiles;
  std::string MetricsFile;
  std::string RemarksFile;
  size_t MaxTimelines = 5;
  double CheckPct = -1;

  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    if (Arg.rfind("--events=", 0) == 0)
      EventsFile = Arg.substr(9);
    else if (Arg.rfind("--trace=", 0) == 0)
      TraceFiles.push_back(Arg.substr(8));
    else if (Arg.rfind("--metrics=", 0) == 0)
      MetricsFile = Arg.substr(10);
    else if (Arg.rfind("--remarks=", 0) == 0)
      RemarksFile = Arg.substr(10);
    else if (Arg.rfind("--timelines=", 0) == 0)
      MaxTimelines =
          static_cast<size_t>(std::strtoull(Arg.c_str() + 12, nullptr, 10));
    else if (Arg.rfind("--check=", 0) == 0)
      CheckPct = std::atof(Arg.c_str() + 8);
    else {
      std::fprintf(stderr, "sxe-obs: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (EventsFile.empty()) {
    usage();
    return 2;
  }

  // ---- Event log: the request table's backbone. -------------------------
  std::map<std::string, RequestRec> Requests; // keyed by trace id hex
  std::vector<EventRec> GlobalEvents;         // daemon_start / drain / dump
  {
    std::string Text;
    if (!readFileText(EventsFile, Text)) {
      std::fprintf(stderr, "sxe-obs: cannot read %s\n", EventsFile.c_str());
      return 2;
    }
    std::vector<std::string> Lines = splitLines(Text);
    for (size_t Index = 0; Index < Lines.size(); ++Index) {
      JsonValue Doc;
      std::string Error;
      if (!parseJson(Lines[Index], Doc, Error)) {
        std::fprintf(stderr, "sxe-obs: %s:%zu: %s\n", EventsFile.c_str(),
                     Index + 1, Error.c_str());
        return 2;
      }
      if (Index == 0 && Doc.find("schema")) {
        std::string Schema = Doc.stringField("schema");
        if (Schema != "sxe.events.v1") {
          std::fprintf(stderr, "sxe-obs: %s: unexpected schema '%s'\n",
                       EventsFile.c_str(), Schema.c_str());
          return 2;
        }
        continue;
      }
      EventRec Event;
      Event.Nanos = asUint(Doc, "ts_ns");
      Event.Kind = Doc.stringField("event");
      for (const auto &[Key, Value] : Doc.members()) {
        if (Key == "ts_ns" || Key == "event" || Key == "trace_id" ||
            Key == "request_id" || Key == "name")
          continue;
        if (Value.isString())
          Event.Detail +=
              (Event.Detail.empty() ? "" : " ") + Key + "=" +
              Value.stringValue();
      }
      std::string TraceHex = Doc.stringField("trace_id");
      if (TraceHex.empty()) {
        GlobalEvents.push_back(std::move(Event));
        continue;
      }
      RequestRec &Request = Requests[TraceHex];
      Request.TraceHex = TraceHex;
      if (uint64_t Id = asUint(Doc, "request_id"))
        Request.RequestId = Id;
      std::string Name = Doc.stringField("name");
      if (!Name.empty())
        Request.Name = Name;
      if (Event.Kind == "reply") {
        Request.Status = Doc.stringField("status");
        std::string Tier = Doc.stringField("tier");
        if (!Tier.empty())
          Request.Tier = Tier;
      } else if (Event.Kind == "cache_tier") {
        Request.Tier = Doc.stringField("tier");
      }
      Request.Events.push_back(std::move(Event));
    }
  }

  // ---- Traces: spans join the table by their trace_id arg. --------------
  StageSamples Stages;
  size_t TotalSpans = 0, JoinedSpans = 0;
  for (size_t FileIndex = 0; FileIndex < TraceFiles.size(); ++FileIndex) {
    const std::string &Path = TraceFiles[FileIndex];
    std::string Text;
    if (!readFileText(Path, Text)) {
      std::fprintf(stderr, "sxe-obs: cannot read %s\n", Path.c_str());
      return 2;
    }
    JsonValue Doc;
    std::string Error;
    if (!parseJson(Text, Doc, Error)) {
      std::fprintf(stderr, "sxe-obs: %s: %s\n", Path.c_str(), Error.c_str());
      return 2;
    }
    const JsonValue *Spans = Doc.find("traceEvents");
    if (!Spans || !Spans->isArray()) {
      std::fprintf(stderr, "sxe-obs: %s: no traceEvents array\n",
                   Path.c_str());
      return 2;
    }
    std::string Source = "trace" + std::to_string(FileIndex);
    std::map<uint64_t, std::string> TrackNames;
    for (const JsonValue &Span : Spans->array()) {
      if (Span.stringField("ph") == "M" &&
          Span.stringField("name") == "thread_name") {
        if (const JsonValue *Args = Span.find("args"))
          TrackNames[asUint(Span, "tid")] = Args->stringField("name");
      }
    }
    for (const JsonValue &Span : Spans->array()) {
      if (Span.stringField("ph") != "X")
        continue;
      ++TotalSpans;
      const JsonValue *Args = Span.find("args");
      std::string TraceHex = Args ? Args->stringField("trace_id") : "";
      if (TraceHex.empty())
        continue;
      auto It = Requests.find(TraceHex);
      if (It == Requests.end())
        continue;
      ++JoinedSpans;
      SpanRec Rec;
      Rec.Name = Span.stringField("name");
      Rec.Category = Span.stringField("cat");
      Rec.Source = Source;
      uint64_t Tid = asUint(Span, "tid");
      auto NameIt = TrackNames.find(Tid);
      Rec.Track = NameIt != TrackNames.end()
                      ? NameIt->second
                      : "tid-" + std::to_string(Tid);
      if (const JsonValue *Ts = Span.find("ts"))
        Rec.StartUs = Ts->numberValue();
      if (const JsonValue *Dur = Span.find("dur"))
        Rec.DurUs = Dur->numberValue();
      double Ms = Rec.DurUs / 1000.0;
      if (Rec.Name == "queue-wait")
        Stages.QueueWaitMs.push_back(Ms);
      else if (Rec.Name == "cache-probe" || Rec.Name == "pcache-probe")
        Stages.CacheProbeMs.push_back(Ms);
      else if (Rec.Name == "compile")
        Stages.CompileMs.push_back(Ms);
      else if (Rec.Name == "serve-request")
        Stages.ServeMs.push_back(Ms);
      else if (Rec.Name == "request")
        Stages.ClientMs.push_back(Ms);
      It->second.Spans.push_back(std::move(Rec));
    }
  }

  // ---- Remarks: joined per module name. ---------------------------------
  if (!RemarksFile.empty()) {
    std::string Text;
    if (!readFileText(RemarksFile, Text)) {
      std::fprintf(stderr, "sxe-obs: cannot read %s\n", RemarksFile.c_str());
      return 2;
    }
    std::map<std::string, size_t> PerModule;
    for (const std::string &Line : splitLines(Text)) {
      JsonValue Doc;
      std::string Error;
      if (!parseJson(Line, Doc, Error))
        continue; // Tolerate trailing partial lines in remark streams.
      std::string Module = Doc.stringField("module");
      if (Module.empty())
        Module = Doc.stringField("name");
      if (!Module.empty())
        ++PerModule[Module];
    }
    for (auto &[Hex, Request] : Requests) {
      auto It = PerModule.find(Request.Name);
      if (It != PerModule.end())
        Request.RemarkCount = It->second;
    }
  }

  // ---- Request table. ---------------------------------------------------
  std::vector<const RequestRec *> Ordered;
  for (const auto &[Hex, Request] : Requests)
    Ordered.push_back(&Request);
  std::sort(Ordered.begin(), Ordered.end(),
            [](const RequestRec *A, const RequestRec *B) {
              if (A->RequestId != B->RequestId)
                return A->RequestId < B->RequestId;
              return A->TraceHex < B->TraceHex;
            });

  size_t Joined = 0;
  for (const RequestRec *Request : Ordered)
    if (!Request->Spans.empty())
      ++Joined;

  std::printf("sxe-obs: %zu requests, %zu with trace spans; %zu/%zu spans "
              "joined across %zu trace file(s)\n",
              Ordered.size(), Joined, JoinedSpans, TotalSpans,
              TraceFiles.size());
  for (const EventRec &Event : GlobalEvents)
    std::printf("  [daemon] %-12s %s\n", Event.Kind.c_str(),
                Event.Detail.c_str());

  std::printf("\n%-6s %-18s %-20s %-10s %-10s %6s %8s\n", "req", "trace",
              "module", "status", "tier", "spans", "remarks");
  for (const RequestRec *Request : Ordered)
    std::printf("%-6llu %-18s %-20s %-10s %-10s %6zu %8zu\n",
                static_cast<unsigned long long>(Request->RequestId),
                Request->TraceHex.c_str(), Request->Name.c_str(),
                Request->Status.empty() ? "-" : Request->Status.c_str(),
                Request->Tier.empty() ? "-" : Request->Tier.c_str(),
                Request->Spans.size(), Request->RemarkCount);

  // ---- Per-request timelines (offsets are per trace source). ------------
  size_t Printed = 0;
  for (const RequestRec *Request : Ordered) {
    if (Printed >= MaxTimelines)
      break;
    if (Request->Spans.empty() && Request->Events.empty())
      continue;
    ++Printed;
    std::printf("\nrequest %llu  trace=%s  module=%s  status=%s  tier=%s\n",
                static_cast<unsigned long long>(Request->RequestId),
                Request->TraceHex.c_str(), Request->Name.c_str(),
                Request->Status.empty() ? "-" : Request->Status.c_str(),
                Request->Tier.empty() ? "-" : Request->Tier.c_str());
    uint64_t FirstNs = 0;
    for (const EventRec &Event : Request->Events)
      if (Event.Nanos && (!FirstNs || Event.Nanos < FirstNs))
        FirstNs = Event.Nanos;
    for (const EventRec &Event : Request->Events)
      std::printf("  event +%9.3fms  %-16s %s\n",
                  Event.Nanos >= FirstNs
                      ? static_cast<double>(Event.Nanos - FirstNs) / 1e6
                      : 0.0,
                  Event.Kind.c_str(), Event.Detail.c_str());
    std::map<std::string, double> SourceEpochUs;
    for (const SpanRec &Span : Request->Spans) {
      auto It = SourceEpochUs.find(Span.Source);
      if (It == SourceEpochUs.end() || Span.StartUs < It->second)
        SourceEpochUs[Span.Source] = Span.StartUs;
    }
    std::vector<const SpanRec *> Spans;
    for (const SpanRec &Span : Request->Spans)
      Spans.push_back(&Span);
    std::sort(Spans.begin(), Spans.end(),
              [&](const SpanRec *A, const SpanRec *B) {
                double RelA = A->StartUs - SourceEpochUs[A->Source];
                double RelB = B->StartUs - SourceEpochUs[B->Source];
                return RelA < RelB;
              });
    for (const SpanRec *Span : Spans)
      std::printf("  span  +%9.3fms %9.3fms  %-14s [%s] (%s:%s)\n",
                  (Span->StartUs - SourceEpochUs[Span->Source]) / 1000.0,
                  Span->DurUs / 1000.0, Span->Name.c_str(),
                  Span->Category.c_str(), Span->Source.c_str(),
                  Span->Track.c_str());
  }
  if (Ordered.size() > Printed && MaxTimelines)
    std::printf("\n(%zu more request timelines; raise --timelines=N)\n",
                Ordered.size() - Printed);

  // ---- Stage percentile breakdown. --------------------------------------
  auto PrintStage = [](const char *Label, const std::vector<double> &Ms) {
    std::printf("  %-14s %6zu %9.3f %9.3f %9.3f\n", Label, Ms.size(),
                percentile(Ms, 50), percentile(Ms, 90), percentile(Ms, 99));
  };
  std::printf("\nstage latency breakdown (ms):\n");
  std::printf("  %-14s %6s %9s %9s %9s\n", "stage", "count", "p50", "p90",
              "p99");
  PrintStage("queue-wait", Stages.QueueWaitMs);
  PrintStage("cache-probe", Stages.CacheProbeMs);
  PrintStage("compile", Stages.CompileMs);
  PrintStage("serve-request", Stages.ServeMs);
  if (!Stages.ClientMs.empty())
    PrintStage("client-rtt", Stages.ClientMs);

  std::map<std::string, size_t> TierCounts;
  for (const RequestRec *Request : Ordered)
    if (!Request->Tier.empty())
      ++TierCounts[Request->Tier];
  std::printf("tier mix:");
  for (const auto &[Tier, Count] : TierCounts)
    std::printf(" %s=%zu", Tier.c_str(), Count);
  std::printf("\n");

  // ---- Metrics exemplars join back to the request table. ----------------
  if (!MetricsFile.empty()) {
    std::string Text;
    if (!readFileText(MetricsFile, Text)) {
      std::fprintf(stderr, "sxe-obs: cannot read %s\n", MetricsFile.c_str());
      return 2;
    }
    JsonValue Doc;
    std::string Error;
    if (!parseJson(Text, Doc, Error)) {
      std::fprintf(stderr, "sxe-obs: %s: %s\n", MetricsFile.c_str(),
                   Error.c_str());
      return 2;
    }
    std::printf("\nhistogram exemplars:\n");
    if (const JsonValue *Histograms = Doc.find("histograms")) {
      for (const auto &[Name, Histogram] : Histograms->members()) {
        auto PrintExemplar = [&](const std::string &Bound,
                                 const std::string &Hex) {
          auto It = Requests.find(Hex);
          std::printf("  %-28s le=%-8s %s -> %s\n", Name.c_str(),
                      Bound.c_str(), Hex.c_str(),
                      It == Requests.end()
                          ? "(unknown request)"
                          : (It->second.Name + " req " +
                             std::to_string(It->second.RequestId))
                                .c_str());
        };
        if (const JsonValue *Buckets = Histogram.find("buckets"))
          for (const JsonValue &Bucket : Buckets->array()) {
            std::string Hex = Bucket.stringField("exemplar_trace_id");
            if (Hex.empty())
              continue;
            char Bound[32];
            std::snprintf(Bound, sizeof(Bound), "%g",
                          Bucket.find("le") ? Bucket.find("le")->numberValue()
                                            : 0.0);
            PrintExemplar(Bound, Hex);
          }
        std::string InfHex = Histogram.stringField("inf_exemplar_trace_id");
        if (!InfHex.empty())
          PrintExemplar("+Inf", InfHex);
      }
    }
  }

  // ---- CI gate. ---------------------------------------------------------
  if (CheckPct >= 0) {
    double Coverage = Ordered.empty()
                          ? 0.0
                          : 100.0 * static_cast<double>(Joined) /
                                static_cast<double>(Ordered.size());
    std::printf("\njoin coverage: %.2f%% (%zu/%zu requests joined; gate "
                "%.2f%%)\n",
                Coverage, Joined, Ordered.size(), CheckPct);
    if (Ordered.empty() || Coverage < CheckPct) {
      std::fprintf(stderr, "sxe-obs: join coverage below --check=%.2f\n",
                   CheckPct);
      return 1;
    }
  }
  return 0;
}
