//===- tools/bench_compare.cpp - Bench regression gate ------------------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
// Compares two sxe.bench-report.v1 files (a committed baseline and a fresh
// run) and fails when compile time regressed:
//
//   bench_compare BASELINE.json CURRENT.json [--threshold=0.10]
//
// The gate is on the aggregate of each timed metric across workloads —
// total middle-end wall time, UD/DU chain creation, and the
// sign-extension-optimization column — because per-workload times on
// shared CI runners are too noisy to gate individually; the per-workload
// ratios are still printed for diagnosis. Exit status: 0 when every
// aggregate stays within (1 + threshold) of the baseline, 1 on
// regression, 2 on usage or schema errors.
//
//===---------------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace sxe;

namespace {

struct WorkloadTimes {
  double TotalNs = 0;
  double ChainNs = 0;
  double SxeNs = 0;
  /// Request-latency percentiles (serve-daemon reports only; 0 = absent).
  double P50Ns = 0;
  double P99Ns = 0;
  /// Execution-speed family (bench_exec reports only; 0 = absent).
  double ExecInterpNs = 0;
  double ExecNativeNs = 0;
};

/// One parsed report: workload name -> times, in file order.
struct Report {
  std::vector<std::string> Order;
  std::map<std::string, WorkloadTimes> Times;
};

bool loadReport(const char *Path, Report &Out, std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = std::string("cannot open ") + Path;
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  JsonValue V;
  if (!parseJson(Buffer.str(), V, Error))
    return false;
  if (V.stringField("schema") != "sxe.bench-report.v1") {
    Error = std::string(Path) + ": not an sxe.bench-report.v1 file";
    return false;
  }
  // Two report shapes share the sxe.bench-report.v1 envelope: the table
  // benches carry per-workload `results`, the compile service carries
  // per-job-count `runs` (gated on wall time only).
  if (const JsonValue *Results = V.find("results");
      Results && Results->isArray()) {
    for (const JsonValue &R : Results->array()) {
      std::string Name = R.stringField("workload");
      WorkloadTimes T;
      if (const JsonValue *F = R.find("total_ns"))
        T.TotalNs = F->numberValue();
      if (const JsonValue *F = R.find("chain_creation_ns"))
        T.ChainNs = F->numberValue();
      if (const JsonValue *F = R.find("sxe_opt_ns"))
        T.SxeNs = F->numberValue();
      if (const JsonValue *F = R.find("exec_interp_ns"))
        T.ExecInterpNs = F->numberValue();
      if (const JsonValue *F = R.find("exec_native_ns"))
        T.ExecNativeNs = F->numberValue();
      Out.Order.push_back(Name);
      Out.Times[Name] = T;
    }
  } else if (const JsonValue *Runs = V.find("runs");
             Runs && Runs->isArray()) {
    for (const JsonValue &R : Runs->array()) {
      std::string Name = "jobs=";
      if (const JsonValue *J = R.find("jobs"))
        Name += std::to_string(static_cast<long>(J->numberValue()));
      WorkloadTimes T;
      if (const JsonValue *F = R.find("wall_ns"))
        T.TotalNs = F->numberValue();
      if (const JsonValue *F = R.find("p50_ns"))
        T.P50Ns = F->numberValue();
      if (const JsonValue *F = R.find("p99_ns"))
        T.P99Ns = F->numberValue();
      Out.Order.push_back(Name);
      Out.Times[Name] = T;
    }
  } else {
    Error = std::string(Path) + ": missing results/runs array";
    return false;
  }
  if (Out.Order.empty()) {
    Error = std::string(Path) + ": empty results array";
    return false;
  }
  return true;
}

double ratioOf(double Current, double Baseline) {
  return Baseline > 0 ? Current / Baseline : 1.0;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *BaselinePath = nullptr;
  const char *CurrentPath = nullptr;
  double Threshold = 0.10;

  for (int Index = 1; Index < Argc; ++Index) {
    const char *Arg = Argv[Index];
    if (std::strncmp(Arg, "--threshold=", 12) == 0) {
      Threshold = std::atof(Arg + 12);
      if (Threshold <= 0) {
        std::fprintf(stderr, "bench_compare: bad threshold '%s'\n", Arg);
        return 2;
      }
    } else if (!BaselinePath) {
      BaselinePath = Arg;
    } else if (!CurrentPath) {
      CurrentPath = Arg;
    } else {
      std::fprintf(stderr, "usage: bench_compare BASELINE.json CURRENT.json"
                           " [--threshold=0.10]\n");
      return 2;
    }
  }
  if (!BaselinePath || !CurrentPath) {
    std::fprintf(stderr, "usage: bench_compare BASELINE.json CURRENT.json"
                         " [--threshold=0.10]\n");
    return 2;
  }

  Report Baseline, Current;
  std::string Error;
  if (!loadReport(BaselinePath, Baseline, Error) ||
      !loadReport(CurrentPath, Current, Error)) {
    std::fprintf(stderr, "bench_compare: %s\n", Error.c_str());
    return 2;
  }

  // Per-workload detail over the common set (a changed workload list is
  // reported but does not fail the gate; the aggregates below only sum
  // workloads present in both files so they stay comparable).
  std::printf("%-16s %10s %10s %10s\n", "workload", "total", "chains",
              "sxe-opt");
  WorkloadTimes BaseSum, CurSum;
  unsigned Common = 0;
  for (const std::string &Name : Baseline.Order) {
    auto It = Current.Times.find(Name);
    if (It == Current.Times.end()) {
      std::printf("%-16s (missing from current run)\n", Name.c_str());
      continue;
    }
    const WorkloadTimes &B = Baseline.Times[Name];
    const WorkloadTimes &C = It->second;
    std::printf("%-16s %9.2fx %9.2fx %9.2fx\n", Name.c_str(),
                ratioOf(C.TotalNs, B.TotalNs), ratioOf(C.ChainNs, B.ChainNs),
                ratioOf(C.SxeNs, B.SxeNs));
    BaseSum.TotalNs += B.TotalNs;
    BaseSum.ChainNs += B.ChainNs;
    BaseSum.SxeNs += B.SxeNs;
    BaseSum.P50Ns += B.P50Ns;
    BaseSum.P99Ns += B.P99Ns;
    CurSum.TotalNs += C.TotalNs;
    CurSum.ChainNs += C.ChainNs;
    CurSum.SxeNs += C.SxeNs;
    CurSum.P50Ns += C.P50Ns;
    CurSum.P99Ns += C.P99Ns;
    // Gate the exec family only over workloads both runs executed
    // natively (a host without the backend reports interp times only).
    BaseSum.ExecInterpNs += B.ExecInterpNs;
    CurSum.ExecInterpNs += C.ExecInterpNs;
    if (B.ExecNativeNs > 0 && C.ExecNativeNs > 0) {
      BaseSum.ExecNativeNs += B.ExecNativeNs;
      CurSum.ExecNativeNs += C.ExecNativeNs;
    }
    ++Common;
  }
  for (const std::string &Name : Current.Order)
    if (!Baseline.Times.count(Name))
      std::printf("%-16s (new workload, not gated)\n", Name.c_str());
  if (Common == 0) {
    std::fprintf(stderr, "bench_compare: no common workloads\n");
    return 2;
  }

  struct GatedMetric {
    const char *Name;
    double Base;
    double Cur;
  } Metrics[] = {
      {"total middle-end", BaseSum.TotalNs, CurSum.TotalNs},
      {"chain creation", BaseSum.ChainNs, CurSum.ChainNs},
      {"sxe optimization", BaseSum.SxeNs, CurSum.SxeNs},
      // Serve-daemon request-latency percentiles (summed across client
      // levels); present only in serve reports, skipped elsewhere.
      {"latency p50", BaseSum.P50Ns, CurSum.P50Ns},
      {"latency p99", BaseSum.P99Ns, CurSum.P99Ns},
      // Execution-speed family (bench_exec reports only): interpreter
      // dispatch speed and native code quality, each gated on aggregate
      // wall time.
      {"interp execution", BaseSum.ExecInterpNs, CurSum.ExecInterpNs},
      {"native execution", BaseSum.ExecNativeNs, CurSum.ExecNativeNs},
  };

  int Status = 0;
  std::printf("\naggregates over %u workloads (gate: <= %.0f%% slower)\n",
              Common, Threshold * 100.0);
  for (const GatedMetric &M : Metrics) {
    if (M.Base == 0 && M.Cur == 0)
      continue; // Metric absent from this report shape.
    double Ratio = ratioOf(M.Cur, M.Base);
    bool Regressed = Ratio > 1.0 + Threshold;
    std::printf("  %-18s %10.3f ms -> %10.3f ms  (%.2fx)%s\n", M.Name,
                M.Base / 1e6, M.Cur / 1e6, Ratio,
                Regressed ? "  REGRESSION" : "");
    if (Regressed)
      Status = 1;
  }
  if (Status != 0)
    std::fprintf(stderr,
                 "bench_compare: compile-time regression beyond %.0f%%\n",
                 Threshold * 100.0);
  return Status;
}
