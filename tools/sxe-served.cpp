//===- tools/sxe-served.cpp - Compile-serving daemon binary --------------------===//
//
// Part of the sxe project, a reproduction of "Effective Sign Extension
// Elimination" (Kawahito, Komatsu, Nakatani; PLDI 2002).
//
// The production entry point of the serve/ subsystem:
//
//   sxe-served --socket=PATH [--jobs=N] [--cache-dir=DIR] [--cache-bytes=N]
//              [--max-queue=N] [--default-deadline-ms=N]
//              [--metrics-file=FILE] [--trace-file=FILE]
//              [--events-file=FILE] [--flight-dump=FILE]
//              [--flight-capacity=N] [--no-trace]
//
// Binds a unix-domain socket, serves framed compile requests (see
// serve/Protocol.h) until SIGTERM/SIGINT or a client Shutdown frame, then
// drains gracefully: admitted requests finish and deliver their replies,
// the persistent cache index is flushed, the socket is unlinked. With
// --metrics-file the final Prometheus exposition is written on exit (CI
// validates it with `sxetool --validate-obs`).
//
// `--cache-dir` enables the persistent on-disk code cache; a restarted
// daemon pointed at the same directory serves warm artifacts without
// recompiling (`sxe-client --require-persistent-hit` asserts this).
//
// Observability: request-scoped tracing and the structured event log are
// on by default (--no-trace disables both). --trace-file/--events-file
// write the stitched sxe.trace.v1 / sxe.events.v1 artifacts at drain.
// The crash-safe flight recorder is always armed: on SIGSEGV and friends
// the last --flight-capacity lifecycle events are dumped (sxe.flight.v1
// JSONL) to --flight-dump, defaulting to `<socket>.flight.jsonl`.
//
//===----------------------------------------------------------------------------===//

#include "serve/Daemon.h"
#include "support/Json.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sxe;

namespace {

ServeDaemon *ActiveDaemon = nullptr;

void onStopSignal(int) {
  // Async-signal-safe: one relaxed atomic store; run() notices and drains.
  if (ActiveDaemon)
    ActiveDaemon->requestStop();
}

void usage() {
  std::fprintf(
      stderr,
      "usage: sxe-served --socket=PATH [--jobs=N] [--cache-dir=DIR]\n"
      "                  [--cache-bytes=N] [--max-queue=N]\n"
      "                  [--default-deadline-ms=N] [--metrics-file=FILE]\n"
      "                  [--metrics-json=FILE]\n"
      "                  [--trace-file=FILE] [--events-file=FILE]\n"
      "                  [--flight-dump=FILE] [--flight-capacity=N]\n"
      "                  [--no-trace]\n");
}

} // namespace

int main(int argc, char **argv) {
  ServeDaemonOptions Options;
  std::string MetricsFile;
  std::string MetricsJsonFile;
  std::string FlightDumpPath;

  for (int Index = 1; Index < argc; ++Index) {
    std::string Arg = argv[Index];
    if (Arg.rfind("--socket=", 0) == 0) {
      Options.SocketPath = Arg.substr(9);
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      Options.Jobs = static_cast<unsigned>(std::atoi(Arg.c_str() + 7));
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      Options.CacheDir = Arg.substr(12);
    } else if (Arg.rfind("--cache-bytes=", 0) == 0) {
      Options.CacheMaxBytes = std::strtoull(Arg.c_str() + 14, nullptr, 10);
    } else if (Arg.rfind("--max-queue=", 0) == 0) {
      Options.Admission.MaxQueueDepth =
          static_cast<size_t>(std::strtoull(Arg.c_str() + 12, nullptr, 10));
    } else if (Arg.rfind("--default-deadline-ms=", 0) == 0) {
      Options.Admission.DefaultDeadlineNanos =
          std::strtoull(Arg.c_str() + 22, nullptr, 10) * 1000000ull;
    } else if (Arg.rfind("--metrics-file=", 0) == 0) {
      MetricsFile = Arg.substr(15);
    } else if (Arg.rfind("--metrics-json=", 0) == 0) {
      MetricsJsonFile = Arg.substr(15);
    } else if (Arg.rfind("--trace-file=", 0) == 0) {
      Options.TraceFile = Arg.substr(13);
    } else if (Arg.rfind("--events-file=", 0) == 0) {
      Options.EventsFile = Arg.substr(14);
    } else if (Arg.rfind("--flight-dump=", 0) == 0) {
      FlightDumpPath = Arg.substr(14);
    } else if (Arg.rfind("--flight-capacity=", 0) == 0) {
      Options.FlightCapacity =
          static_cast<size_t>(std::strtoull(Arg.c_str() + 18, nullptr, 10));
    } else if (Arg == "--no-trace") {
      Options.Tracing = false;
    } else {
      std::fprintf(stderr, "sxe-served: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (Options.SocketPath.empty()) {
    usage();
    return 2;
  }
  if (FlightDumpPath.empty())
    FlightDumpPath = Options.SocketPath + ".flight.jsonl";

  ServeDaemon Daemon(Options);
  ActiveDaemon = &Daemon;
  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);
  // A client vanishing mid-reply must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  // Crash path: dump the flight-recorder ring before dying with the
  // original signal.
  installFlightDumpOnFatalSignals(&Daemon.flightRecorder(), FlightDumpPath);

  std::string Error;
  if (!Daemon.start(Error)) {
    std::fprintf(stderr, "sxe-served: %s\n", Error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "sxe-served: listening on %s (jobs=%u, cache-dir=%s, "
               "max-queue=%zu)\n",
               Daemon.socketPath().c_str(), Options.Jobs,
               Options.CacheDir.empty() ? "<none>" : Options.CacheDir.c_str(),
               Options.Admission.MaxQueueDepth);

  Daemon.run(); // Blocks until SIGTERM/SIGINT or a Shutdown frame, then drains.

  CompileServiceStats Stats = Daemon.service().stats();
  std::fprintf(stderr,
               "sxe-served: drained. submitted=%llu compiled=%llu "
               "cache_hits=%llu persistent_hits=%llu rejected=%llu "
               "deadline_misses=%llu failed=%llu connections=%llu\n",
               static_cast<unsigned long long>(Stats.Submitted),
               static_cast<unsigned long long>(Stats.Compiled),
               static_cast<unsigned long long>(Stats.CacheHits),
               static_cast<unsigned long long>(Stats.PersistentHits),
               static_cast<unsigned long long>(Stats.Rejected),
               static_cast<unsigned long long>(Stats.DeadlineMisses),
               static_cast<unsigned long long>(Stats.Failed),
               static_cast<unsigned long long>(Daemon.connectionsAccepted()));

  if (!MetricsFile.empty()) {
    if (!writeTextFile(MetricsFile, Daemon.metricsRegistry().toPrometheus())) {
      std::fprintf(stderr, "sxe-served: cannot write %s\n",
                   MetricsFile.c_str());
      return 1;
    }
    std::fprintf(stderr, "sxe-served: wrote %s\n", MetricsFile.c_str());
  }
  if (!MetricsJsonFile.empty()) {
    // The JSON export is the one that carries histogram exemplars
    // (sxe-obs --metrics joins them back to requests).
    if (!writeTextFile(MetricsJsonFile, Daemon.metricsRegistry().toJson())) {
      std::fprintf(stderr, "sxe-served: cannot write %s\n",
                   MetricsJsonFile.c_str());
      return 1;
    }
    std::fprintf(stderr, "sxe-served: wrote %s\n", MetricsJsonFile.c_str());
  }
  ActiveDaemon = nullptr;
  return 0;
}
